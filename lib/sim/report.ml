open Experiments

let hr width = print_endline (String.make width '-')

let print_table2 rows =
  Printf.printf "%-6s %7s %8s %8s %10s %10s %10s %10s %9s %6s\n" "system"
    "L1 %" "L1 size" "L2 size" "L1 miss %" "L2 miss %" "L1 inst" "L2 inst"
    "L1 churn" "burst";
  hr 94;
  List.iter
    (fun r ->
      Printf.printf "%-6s %7.2f %8d %8d %10.3f %10.3f %10d %10d %9d %6d\n"
        r.t2_system r.t2_l1_ratio r.t2_l1 r.t2_l2 r.t2_l1_miss r.t2_l2_miss
        r.t2_l1_installs r.t2_l2_installs r.t2_l1_churn r.t2_l1_burst)
    rows

let print_table3 rows =
  Printf.printf "%-8s %15s %10s %6s\n" "system" "compression %" "churn" "burst";
  hr 44;
  List.iter
    (fun r ->
      Printf.printf "%-8s %15.2f %10d %6d\n" r.t3_system r.t3_compression
        r.t3_churn r.t3_burst)
    rows

let miss_pct mis packets =
  if packets = 0 then 0.0 else 100.0 *. float_of_int mis /. float_of_int packets

let print_miss_series series =
  List.iter
    (fun (name, windows) ->
      let total_p = ref 0 and total_m1 = ref 0 and total_m2 = ref 0 in
      Printf.printf "\n%s: cache-miss ratio per window (%%)\n" name;
      Printf.printf "%8s %10s %10s\n" "window" "L1 miss" "L2 miss";
      hr 30;
      Array.iteri
        (fun i (w : Engine.window) ->
          total_p := !total_p + w.Engine.w_packets;
          total_m1 := !total_m1 + w.Engine.w_l1_misses;
          total_m2 := !total_m2 + w.Engine.w_l2_misses;
          Printf.printf "%8d %10.3f %10.3f\n" (i + 1)
            (miss_pct w.Engine.w_l1_misses w.Engine.w_packets)
            (miss_pct w.Engine.w_l2_misses w.Engine.w_packets))
        windows;
      Printf.printf "%8s %10.3f %10.3f  (average)\n" "-"
        (miss_pct !total_m1 !total_p)
        (miss_pct !total_m2 !total_p))
    series

let print_install_series series =
  List.iter
    (fun (name, windows) ->
      Printf.printf "\n%s: L1 cache installations / evictions per window\n" name;
      Printf.printf "%8s %10s %10s %12s\n" "window" "installs" "evictions"
        "cumulative";
      hr 44;
      let cum = ref 0 in
      Array.iteri
        (fun i (w : Engine.window) ->
          cum := !cum + w.Engine.w_l1_installs;
          Printf.printf "%8d %10d %10d %12d\n" (i + 1) w.Engine.w_l1_installs
            w.Engine.w_l1_evictions !cum)
        windows)
    series

let print_update_series series =
  List.iter
    (fun (name, windows) ->
      Printf.printf "\n%s: BGP updates per window (total vs applied to L1)\n"
        name;
      Printf.printf "%8s %10s %10s %12s %12s\n" "window" "total" "in L1"
        "cum total" "cum L1";
      hr 56;
      let ct = ref 0 and cl = ref 0 in
      Array.iteri
        (fun i (w : Engine.window) ->
          ct := !ct + w.Engine.w_updates;
          cl := !cl + w.Engine.w_updates_l1;
          Printf.printf "%8d %10d %10d %12d %12d\n" (i + 1) w.Engine.w_updates
            w.Engine.w_updates_l1 !ct !cl)
        windows)
    series

let print_resilience (r : Engine.run_result) =
  let open Cfca_resilience in
  Printf.printf
    "  watchdog: %d checks, %d recoveries (%d memory, %d journal)\n"
    r.Engine.r_watchdog_checks r.Engine.r_recoveries
    r.Engine.r_memory_rebuilds r.Engine.r_journal_rebuilds;
  (match r.Engine.r_journal with
  | Some js ->
      Printf.printf
        "  journal: %d records, %d checkpoints, %d live recoveries, %d \
         replayed\n"
        js.Cfca_durability.Store.st_appended
        js.Cfca_durability.Store.st_checkpoints
        js.Cfca_durability.Store.st_recoveries
        js.Cfca_durability.Store.st_replayed
  | None -> ());
  List.iter
    (fun (stream, rep) ->
      Printf.printf "  ingest %s: %s\n" stream (Errors.summary rep);
      if not (Errors.is_clean rep) then
        print_string (Format.asprintf "%a" Errors.pp_report rep))
    r.Engine.r_ingest

let print_run_summary (r : Engine.run_result) =
  let open Cfca_dataplane in
  let s = r.Engine.r_totals in
  Printf.printf "%s | L1=%d L2=%d | packets=%d\n" r.Engine.r_name
    r.Engine.r_config.Config.l1_capacity r.Engine.r_config.Config.l2_capacity
    s.Pipeline.packets;
  Printf.printf
    "  L1 miss %.3f%%  L2 miss %.3f%%  (hit ratio %.2f%% with %.2f%% of the \
     FIB in L1)\n"
    (miss_pct s.Pipeline.l1_misses s.Pipeline.packets)
    (miss_pct s.Pipeline.l2_misses s.Pipeline.packets)
    (100.0 -. miss_pct s.Pipeline.l1_misses s.Pipeline.packets)
    (100.0
    *. float_of_int r.Engine.r_config.Config.l1_capacity
    /. float_of_int r.Engine.r_rib_size);
  Printf.printf "  installs L1=%d L2=%d  evictions L1=%d L2=%d\n"
    s.Pipeline.l1_installs s.Pipeline.l2_installs s.Pipeline.l1_evictions
    s.Pipeline.l2_evictions;
  Printf.printf
    "  BGP: %d updates, %d touched L1 (%.3f%%), burst=%d, %.2f us/update\n"
    r.Engine.r_updates r.Engine.r_updates_l1
    (if r.Engine.r_updates = 0 then 0.0
     else
       100.0 *. float_of_int r.Engine.r_updates_l1
       /. float_of_int r.Engine.r_updates)
    r.Engine.r_burst_l1
    (if r.Engine.r_updates = 0 then 0.0
     else 1e6 *. r.Engine.r_update_seconds /. float_of_int r.Engine.r_updates);
  Printf.printf "  update path: %s updates/sec\n"
    (if r.Engine.r_update_seconds <= 0.0 then "-"
     else
       Printf.sprintf "%.0f"
         (float_of_int r.Engine.r_updates /. r.Engine.r_update_seconds));
  Printf.printf "  FIB: %d routes -> %d installed initially, %d at end\n"
    r.Engine.r_rib_size r.Engine.r_fib_initial r.Engine.r_fib_final;
  Printf.printf "  arena: %d slots live, %d free (%.1f%% occupancy)\n"
    r.Engine.r_arena_live r.Engine.r_arena_free
    (let cap = r.Engine.r_arena_live + r.Engine.r_arena_free in
     if cap = 0 then 0.0
     else 100.0 *. float_of_int r.Engine.r_arena_live /. float_of_int cap);
  Printf.printf "  TCAM: %s\n"
    (Format.asprintf "%a" Cfca_tcam.Tcam.pp_stats r.Engine.r_tcam);
  let fp = r.Engine.r_fastpath in
  Printf.printf
    "  fast path: %d compiled hits, %d tree walks (%d epochs, %d lazy \
     rebuilds, %d invalidations)\n"
    fp.Fib_snapshot.fast_hits fp.Fib_snapshot.fallbacks fp.Fib_snapshot.epoch
    fp.Fib_snapshot.rebuilds fp.Fib_snapshot.invalidations;
  Printf.printf
    "  incremental: %d patched generations (%d cells), %d full recompiles\n"
    fp.Fib_snapshot.patches fp.Fib_snapshot.patched_cells
    fp.Fib_snapshot.full_rebuilds;
  print_resilience r

let print_timings timings =
  Printf.printf "%-8s" "updates";
  List.iter (fun (t : Engine.timing) -> Printf.printf " %12s" t.Engine.t_name) timings;
  print_newline ();
  hr (8 + (13 * List.length timings));
  (* checkpoints are aligned across systems (same update array) *)
  (match timings with
  | [] -> ()
  | first :: _ ->
      List.iteri
        (fun i (count, _) ->
          Printf.printf "%-8d" count;
          List.iter
            (fun (t : Engine.timing) ->
              match List.nth_opt t.Engine.t_checkpoints i with
              | Some (_, secs) -> Printf.printf " %9.1f ms" (1e3 *. secs)
              | None -> Printf.printf " %12s" "-")
            timings;
          print_newline ())
        first.Engine.t_checkpoints);
  List.iter
    (fun (t : Engine.timing) ->
      match List.rev t.Engine.t_checkpoints with
      | (count, secs) :: _ when count > 0 ->
          Printf.printf "%-8s mean %.2f us/update\n" t.Engine.t_name
            (1e6 *. secs /. float_of_int count)
      | _ -> ())
    timings

let print_ablation ~title rows =
  Printf.printf "%s\n" title;
  Printf.printf "%-24s %10s %10s %10s %10s %12s\n" "variant" "L1 miss %"
    "L2 miss %" "L1 inst" "L1 evict" "TCAM writes";
  hr 82;
  List.iter
    (fun (r : Experiments.ablation_row) ->
      Printf.printf "%-24s %10.3f %10.3f %10d %10d %12d\n"
        r.Experiments.ab_label r.Experiments.ab_l1_miss r.Experiments.ab_l2_miss
        r.Experiments.ab_l1_installs r.Experiments.ab_l1_evictions
        r.Experiments.ab_tcam_writes)
    rows

(* -- lookup microbench (compiled data plane baseline) --------------- *)

type lookup_row = { lb_name : string; lb_mode : string; lb_ns : float }

type lookup_bench = {
  lb_scale : float;
  lb_entries : int;
  lb_rows : lookup_row list;
  lb_speedup_warm : float;
  lb_speedup_cold : float;
  lb_oracle_probes : int;
  lb_oracle_divergences : int;
}

(* Hand-rolled JSON: the bench must not grow a dependency for one
   artifact. The helpers are the telemetry exporter's (one
   implementation for every BENCH_*/telemetry artifact): numbers are
   clamped finite so the output always parses. *)
let json_float = Cfca_telemetry.Export.json_float

let json_string = Cfca_telemetry.Export.json_string

let json_of_lookup_bench b =
  let row r =
    Printf.sprintf "{\"name\": %s, \"mode\": %s, \"ns_per_op\": %s}"
      (json_string r.lb_name) (json_string r.lb_mode) (json_float r.lb_ns)
  in
  String.concat ""
    [
      "{\n";
      "  \"bench\": \"lookup\",\n";
      Printf.sprintf "  \"scale\": %s,\n" (json_float b.lb_scale);
      Printf.sprintf "  \"table_entries\": %d,\n" b.lb_entries;
      "  \"results\": [\n    ";
      String.concat ",\n    " (List.map row b.lb_rows);
      "\n  ],\n";
      Printf.sprintf
        "  \"speedup\": {\"warm\": %s, \"cold\": %s},\n"
        (json_float b.lb_speedup_warm)
        (json_float b.lb_speedup_cold);
      Printf.sprintf
        "  \"oracle\": {\"probes\": %d, \"divergences\": %d}\n"
        b.lb_oracle_probes b.lb_oracle_divergences;
      "}\n";
    ]

let print_lookup_bench b =
  Printf.printf "lookup microbench (scale %.2f, %d routes)\n" b.lb_scale
    b.lb_entries;
  Printf.printf "%-24s %-6s %12s\n" "table" "mode" "ns/lookup";
  hr 44;
  List.iter
    (fun r -> Printf.printf "%-24s %-6s %12.1f\n" r.lb_name r.lb_mode r.lb_ns)
    b.lb_rows;
  Printf.printf
    "compiled vs pointer-chasing Lpm: %.2fx warm, %.2fx cold\n"
    b.lb_speedup_warm b.lb_speedup_cold;
  Printf.printf "oracle: %d probes, %d divergences\n" b.lb_oracle_probes
    b.lb_oracle_divergences

(* -- update-churn microbench (arena vs record control plane) -------- *)

type update_row = {
  ub_system : string;  (** ["cfca"] or ["pfca"] *)
  ub_backend : string;  (** {!Cfca_trie.Bintrie.backend_name} *)
  ub_rib_size : int;
  ub_updates : int;
  ub_updates_per_sec : float;
  ub_heap_words_per_route : float;
}

type patch_stats = {
  up_bursts : int;
  up_patched : int;
  up_full : int;
  up_cells : int;
  up_coalesced_seen : int;
  up_coalesced_emitted : int;
  up_checks : int;
  up_divergences : int;
  up_ups_patched : float;
  up_ups_full : float;
}

type update_bench = {
  ub_scale : float;
  ub_rows : update_row list;
  ub_speedup_cfca : float;  (** arena updates/sec over record, CFCA *)
  ub_speedup_pfca : float;
  ub_gate_ops : int;  (** FIB operations compared across backends *)
  ub_gate_divergences : int;  (** must be 0 for the bench to pass *)
  ub_patch : patch_stats;
}

let json_of_update_bench b =
  let row r =
    Printf.sprintf
      "{\"system\": %s, \"backend\": %s, \"rib_size\": %d, \"updates\": %d, \
       \"updates_per_sec\": %s, \"heap_words_per_route\": %s}"
      (json_string r.ub_system) (json_string r.ub_backend) r.ub_rib_size
      r.ub_updates
      (json_float r.ub_updates_per_sec)
      (json_float r.ub_heap_words_per_route)
  in
  String.concat ""
    [
      "{\n";
      "  \"bench\": \"update\",\n";
      Printf.sprintf "  \"scale\": %s,\n" (json_float b.ub_scale);
      "  \"results\": [\n    ";
      String.concat ",\n    " (List.map row b.ub_rows);
      "\n  ],\n";
      Printf.sprintf "  \"speedup\": {\"cfca\": %s, \"pfca\": %s},\n"
        (json_float b.ub_speedup_cfca)
        (json_float b.ub_speedup_pfca);
      Printf.sprintf
        "  \"gate\": {\"ops_compared\": %d, \"divergences\": %d},\n"
        b.ub_gate_ops b.ub_gate_divergences;
      (let p = b.ub_patch in
       Printf.sprintf
         "  \"patch\": {\"bursts\": %d, \"patched\": %d, \
          \"full_recompiles\": %d, \"patched_cells\": %d, \
          \"coalesced_seen\": %d, \"coalesced_emitted\": %d, \
          \"checks\": %d, \"divergences\": %d},\n"
         p.up_bursts p.up_patched p.up_full p.up_cells p.up_coalesced_seen
         p.up_coalesced_emitted p.up_checks p.up_divergences);
      (let p = b.ub_patch in
       Printf.sprintf
         "  \"incremental\": {\"updates_per_sec_patched\": %s, \
          \"updates_per_sec_full\": %s, \"speedup\": %s}\n"
         (json_float p.up_ups_patched)
         (json_float p.up_ups_full)
         (json_float
            (if p.up_ups_full > 0.0 then p.up_ups_patched /. p.up_ups_full
             else 0.0)));
      "}\n";
    ]

let print_update_bench b =
  Printf.printf "update-churn microbench (scale %.2f)\n" b.ub_scale;
  Printf.printf "%-6s %-8s %10s %10s %14s %12s\n" "system" "backend" "routes"
    "updates" "updates/sec" "words/route";
  hr 66;
  List.iter
    (fun r ->
      Printf.printf "%-6s %-8s %10d %10d %14.0f %12.1f\n" r.ub_system
        r.ub_backend r.ub_rib_size r.ub_updates r.ub_updates_per_sec
        r.ub_heap_words_per_route)
    b.ub_rows;
  Printf.printf "arena vs record: %.2fx CFCA, %.2fx PFCA\n" b.ub_speedup_cfca
    b.ub_speedup_pfca;
  Printf.printf "gate: %d FIB ops compared, %d divergences\n" b.ub_gate_ops
    b.ub_gate_divergences;
  let p = b.ub_patch in
  Printf.printf
    "incremental: %d bursts -> %d patched / %d full recompiles (%d cells); \
     coalesced %d -> %d ops\n"
    p.up_bursts p.up_patched p.up_full p.up_cells p.up_coalesced_seen
    p.up_coalesced_emitted;
  Printf.printf "patch gate: %d probes, %d divergences\n" p.up_checks
    p.up_divergences;
  if p.up_ups_full > 0.0 then
    Printf.printf
      "snapshot maintenance: %.0f updates/sec patched vs %.0f full \
       (%.2fx)\n"
      p.up_ups_patched p.up_ups_full
      (p.up_ups_patched /. p.up_ups_full)

(* -- full-scale replay harness -------------------------------------- *)

type replay_bench = { rb_scale : float; rb_result : Replay.result }

let json_of_replay_bench b =
  let r = b.rb_result in
  String.concat ""
    [
      "{\n";
      "  \"bench\": \"replay\",\n";
      Printf.sprintf "  \"scale\": %s,\n" (json_float b.rb_scale);
      Printf.sprintf
        "  \"rib\": {\"routes\": %d, \"fib_entries\": %d, \
         \"load_seconds\": %s},\n"
        r.Replay.r_routes r.Replay.r_fib_entries
        (json_float r.Replay.r_load_seconds);
      Printf.sprintf
        "  \"lookup\": {\"packets\": %d, \"per_sec\": %s, \
         \"l1_hit_ratio\": %s, \"l2_hit_ratio\": %s, \
         \"fastpath_hit_ratio\": %s},\n"
        r.Replay.r_packets
        (json_float r.Replay.r_lookups_per_sec)
        (json_float r.Replay.r_l1_hit_ratio)
        (json_float r.Replay.r_l2_hit_ratio)
        (json_float r.Replay.r_fastpath_hit_ratio);
      Printf.sprintf
        "  \"plane\": {\"lookups\": %d, \"per_sec\": %s, \
         \"hit_ratio\": %s, \"published\": %d, \"patched_publishes\": %d, \
         \"full_compiles\": %d, \"freed\": %d},\n"
        r.Replay.r_plane_lookups
        (json_float r.Replay.r_plane_per_sec)
        (json_float r.Replay.r_plane_hit_ratio)
        r.Replay.r_published r.Replay.r_patched_publishes
        r.Replay.r_full_compiles r.Replay.r_freed;
      Printf.sprintf
        "  \"update\": {\"updates\": %d, \"per_sec\": %s, \"bursts\": %d, \
         \"coalesced_seen\": %d, \"coalesced_emitted\": %d},\n"
        r.Replay.r_updates
        (json_float r.Replay.r_updates_per_sec)
        r.Replay.r_bursts r.Replay.r_coalesced_seen
        r.Replay.r_coalesced_emitted;
      Printf.sprintf
        "  \"patch\": {\"patched\": %d, \"full_recompiles\": %d, \
         \"patched_cells\": %d},\n"
        r.Replay.r_patches r.Replay.r_full_rebuilds r.Replay.r_patched_cells;
      Printf.sprintf
        "  \"audit\": {\"probes\": %d, \"divergences\": %d, \
         \"invariants_ok\": %b},\n"
        r.Replay.r_audit_probes r.Replay.r_audit_divergences
        r.Replay.r_verify_ok;
      Printf.sprintf
        "  \"memory\": {\"heap_words_per_route\": %s, \"heap_mb_peak\": %s, \
         \"budget_words_per_route\": %s, \"within_budget\": %b}\n"
        (json_float r.Replay.r_words_per_route)
        (json_float r.Replay.r_heap_mb_peak)
        (json_float r.Replay.r_budget_words)
        r.Replay.r_budget_ok;
      "}\n";
    ]

let print_replay_bench b =
  let r = b.rb_result in
  Printf.printf
    "full-scale replay (scale %.2f): %d routes -> %d FIB entries, loaded in \
     %.2fs\n"
    b.rb_scale r.Replay.r_routes r.Replay.r_fib_entries
    r.Replay.r_load_seconds;
  Printf.printf
    "lookups:  %d packets at %.0f/s; hit ratios: l1 %.4f, l2 %.4f, fastpath \
     %.4f\n"
    r.Replay.r_packets r.Replay.r_lookups_per_sec r.Replay.r_l1_hit_ratio
    r.Replay.r_l2_hit_ratio r.Replay.r_fastpath_hit_ratio;
  Printf.printf
    "plane:    %d lookups at %.0f/s (hit %.4f); %d published (%d patched, %d \
     full), %d freed\n"
    r.Replay.r_plane_lookups r.Replay.r_plane_per_sec
    r.Replay.r_plane_hit_ratio r.Replay.r_published
    r.Replay.r_patched_publishes r.Replay.r_full_compiles r.Replay.r_freed;
  Printf.printf
    "updates:  %d in %d bursts at %.0f/s through the full write path; \
     coalesced %d -> %d\n"
    r.Replay.r_updates r.Replay.r_bursts r.Replay.r_updates_per_sec
    r.Replay.r_coalesced_seen r.Replay.r_coalesced_emitted;
  Printf.printf "snapshot: %d patched / %d full recompiles (%d cells)\n"
    r.Replay.r_patches r.Replay.r_full_rebuilds r.Replay.r_patched_cells;
  Printf.printf "audit:    %d probes, %d divergences, invariants %s\n"
    r.Replay.r_audit_probes r.Replay.r_audit_divergences
    (if r.Replay.r_verify_ok then "ok" else "VIOLATED");
  Printf.printf
    "memory:   %.1f heap words/route (budget %.1f: %s); heap high-water %.1f \
     MB\n"
    r.Replay.r_words_per_route r.Replay.r_budget_words
    (if r.Replay.r_budget_ok then "within" else "OVER")
    r.Replay.r_heap_mb_peak

(* -- multicore lookup-plane bench ----------------------------------- *)

type mt_row = {
  mt_r_domains : int;
  mt_r_mode : string;  (** ["warm"] or ["cold"] *)
  mt_r_mlookups : float;
  mt_r_speedup : float;
  mt_r_efficiency : float;
  mt_r_published : int;
  mt_r_freed : int;
  mt_r_retired_peak : int;
}

type republish_stats = {
  mr_patched : int;
  mr_full : int;
  mr_patched_us : float;
  mr_full_us : float;
}

type mt_bench = {
  mb_scale : float;
  mb_cores : int;
  mb_rib_size : int;
  mb_rows : mt_row list;
  mb_audit_samples : int;
  mb_audit_divergences : int;
  mb_live_violations : int;
  mb_counters_exact : bool;
  mb_republish : republish_stats;
}

let json_of_mt_bench b =
  let row r =
    Printf.sprintf
      "{\"domains\": %d, \"mode\": %s, \"mlookups_per_sec\": %s, \
       \"speedup\": %s, \"efficiency\": %s, \"published\": %d, \
       \"freed\": %d, \"retired_peak\": %d}"
      r.mt_r_domains (json_string r.mt_r_mode)
      (json_float r.mt_r_mlookups)
      (json_float r.mt_r_speedup)
      (json_float r.mt_r_efficiency)
      r.mt_r_published r.mt_r_freed r.mt_r_retired_peak
  in
  String.concat ""
    [
      "{\n";
      "  \"bench\": \"mt-lookup\",\n";
      Printf.sprintf "  \"scale\": %s,\n" (json_float b.mb_scale);
      Printf.sprintf "  \"cores\": %d,\n" b.mb_cores;
      Printf.sprintf "  \"rib_size\": %d,\n" b.mb_rib_size;
      "  \"results\": [\n    ";
      String.concat ",\n    " (List.map row b.mb_rows);
      "\n  ],\n";
      Printf.sprintf
        "  \"audit\": {\"samples\": %d, \"divergences\": %d, \
         \"live_violations\": %d, \"counters_exact\": %b},\n"
        b.mb_audit_samples b.mb_audit_divergences b.mb_live_violations
        b.mb_counters_exact;
      (let rp = b.mb_republish in
       Printf.sprintf
         "  \"republish\": {\"patched\": %d, \"full\": %d, \
          \"patched_us\": %s, \"full_us\": %s, \"speedup\": %s}\n"
         rp.mr_patched rp.mr_full
         (json_float rp.mr_patched_us)
         (json_float rp.mr_full_us)
         (json_float
            (if rp.mr_patched_us > 0.0 then rp.mr_full_us /. rp.mr_patched_us
             else 0.0)));
      "}\n";
    ]

let print_mt_bench b =
  Printf.printf
    "multicore lookup-plane bench (scale %.2f, %d routes, %d cores \
     available)\n"
    b.mb_scale b.mb_rib_size b.mb_cores;
  Printf.printf "%-8s %-5s %14s %9s %11s %10s %6s %13s\n" "domains" "mode"
    "Mlookups/sec" "speedup" "efficiency" "published" "freed" "retired_peak";
  hr 82;
  List.iter
    (fun r ->
      Printf.printf "%-8d %-5s %14.2f %8.2fx %10.0f%% %10d %6d %13d\n"
        r.mt_r_domains r.mt_r_mode r.mt_r_mlookups r.mt_r_speedup
        (100. *. r.mt_r_efficiency)
        r.mt_r_published r.mt_r_freed r.mt_r_retired_peak)
    b.mb_rows;
  Printf.printf
    "audit: %d samples, %d divergences, %d live violations, counters %s\n"
    b.mb_audit_samples b.mb_audit_divergences b.mb_live_violations
    (if b.mb_counters_exact then "exact" else "INEXACT");
  let rp = b.mb_republish in
  Printf.printf
    "republish: %d patched / %d full compiles; %.1f us patched vs %.1f us \
     full%s\n"
    rp.mr_patched rp.mr_full rp.mr_patched_us rp.mr_full_us
    (if rp.mr_patched_us > 0.0 then
       Printf.sprintf " (%.1fx)" (rp.mr_full_us /. rp.mr_patched_us)
     else "")

(* -- telemetry series ----------------------------------------------- *)

let print_telemetry_series ?(cols = [ "l1_hit_ratio"; "l2_hit_ratio";
                                      "tcam_occupancy"; "forwarding_errors" ])
    series =
  let module T = Cfca_telemetry.Timeseries in
  List.iter
    (fun (name, (tel : Engine.telemetry)) ->
      let ts = tel.Engine.t_series in
      let have = T.columns ts in
      let cols = List.filter (fun c -> List.mem c have) cols in
      Printf.printf "\n%s: per-%d-event windows%s\n" name (T.interval ts)
        (if T.dropped ts > 0 then
           Printf.sprintf " (%d oldest windows dropped)" (T.dropped ts)
         else "");
      Printf.printf "%8s %8s" "window" "events";
      List.iter (fun c -> Printf.printf " %18s" c) cols;
      print_newline ();
      hr (17 + (19 * List.length cols));
      let events = T.window_events ts in
      let data = List.map (fun c -> T.get ts c) cols in
      let first = T.first_window ts in
      Array.iteri
        (fun i ev ->
          Printf.printf "%8d %8d" (first + i) ev;
          List.iter (fun col -> Printf.printf " %18.4f" col.(i)) data;
          print_newline ())
        events)
    series

let print_robustness rows =
  Printf.printf "%-8s %8s | %12s %12s %12s\n" "system" "seeds" "mean miss %"
    "min" "max";
  hr 60;
  List.iter
    (fun (r : Experiments.robustness_row) ->
      Printf.printf "%-8s %8d | %12.3f %12.3f %12.3f\n"
        r.Experiments.rb_system r.Experiments.rb_seeds r.Experiments.rb_mean
        r.Experiments.rb_min r.Experiments.rb_max)
    rows
