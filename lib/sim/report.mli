(** Plain-text rendering of experiment results, shaped like the paper's
    tables and figure series. *)

val print_table2 : Experiments.table2_row list -> unit

val print_table3 : Experiments.table3_row list -> unit

val print_miss_series : (string * Engine.window array) list -> unit
(** Fig. 9 / Fig. 11: L1 and L2 cache-miss %, one row per 100 K-packet
    window. *)

val print_install_series : (string * Engine.window array) list -> unit
(** Fig. 10a. *)

val print_update_series : (string * Engine.window array) list -> unit
(** Fig. 10b: cumulative BGP updates vs updates applied to L1. *)

val print_resilience : Engine.run_result -> unit
(** Watchdog check/recovery counters plus the per-stream decode
    accounting ([r_ingest]); non-clean streams get their full
    {!Cfca_resilience.Errors.pp_report} counter block. *)

val print_run_summary : Engine.run_result -> unit
(** Includes {!print_resilience}. *)

val print_timings : Engine.timing list -> unit
(** Fig. 12: cumulative handling time at each checkpoint plus the mean
    per-update cost. *)

val print_ablation : title:string -> Experiments.ablation_row list -> unit

val print_robustness : Experiments.robustness_row list -> unit

val print_telemetry_series :
  ?cols:string list -> (string * Engine.telemetry) list -> unit
(** Render named telemetry bundles
    ({!Experiments.hit_ratio_over_time}'s output) as per-window tables,
    one row per retained window. [cols] (default [l1_hit_ratio],
    [l2_hit_ratio], [tcam_occupancy], [forwarding_errors]) is
    intersected with each bundle's actual columns, so heterogeneous
    bundles print cleanly. *)

(** One measured configuration of the lookup microbench. *)
type lookup_row = {
  lb_name : string;  (** table under test, e.g. ["flat-dir24"] *)
  lb_mode : string;  (** ["warm"] (zipf working set) or ["cold"] (uniform) *)
  lb_ns : float;  (** nanoseconds per lookup (Bechamel OLS estimate) *)
}

type lookup_bench = {
  lb_scale : float;
  lb_entries : int;  (** routes in the table under test *)
  lb_rows : lookup_row list;
  lb_speedup_warm : float;  (** pointer-chasing Lpm ns / compiled DIR ns *)
  lb_speedup_cold : float;
  lb_oracle_probes : int;
  lb_oracle_divergences : int;  (** must be 0; the bench exits non-zero otherwise *)
}

val json_of_lookup_bench : lookup_bench -> string
(** Stable machine-readable rendering ([BENCH_lookup.json]): keys
    [bench], [scale], [table_entries], [results] (objects with [name],
    [mode], [ns_per_op]), [speedup.warm]/[speedup.cold] and
    [oracle.probes]/[oracle.divergences]. Always valid JSON — non-finite
    numbers are clamped. *)

val print_lookup_bench : lookup_bench -> unit

(** One measured configuration of the update-churn microbench. *)
type update_row = {
  ub_system : string;  (** ["cfca"] or ["pfca"] *)
  ub_backend : string;  (** {!Cfca_trie.Bintrie.backend_name} *)
  ub_rib_size : int;
  ub_updates : int;
  ub_updates_per_sec : float;
  ub_heap_words_per_route : float;
      (** {!Cfca_trie.Bintrie.approx_heap_words} / RIB size after replay *)
}

(** Incremental update-path statistics of the churn replay: the
    snapshot patch/recompile split, the coalescer's op reduction, the
    patched-vs-fresh differential gate, and the snapshot-maintenance
    throughput with patching on vs off. *)
type patch_stats = {
  up_bursts : int;  (** update bursts replayed through the snapshot *)
  up_patched : int;  (** generations produced by in-place patching *)
  up_full : int;  (** generations produced by a full recompile *)
  up_cells : int;  (** total root cells rewritten by patches *)
  up_coalesced_seen : int;  (** raw updates folded into the coalescer *)
  up_coalesced_emitted : int;  (** net updates surviving coalescing *)
  up_checks : int;  (** patched-vs-fresh differential probes *)
  up_divergences : int;
      (** must be 0; the bench exits non-zero otherwise *)
  up_ups_patched : float;  (** updates/sec, patching enabled *)
  up_ups_full : float;  (** updates/sec, every refresh a full recompile *)
}

type update_bench = {
  ub_scale : float;
  ub_rows : update_row list;
  ub_speedup_cfca : float;  (** arena updates/sec over record, CFCA *)
  ub_speedup_pfca : float;
  ub_gate_ops : int;  (** FIB operations compared across the backends *)
  ub_gate_divergences : int;
      (** must be 0; the bench exits non-zero otherwise *)
  ub_patch : patch_stats;
}

val json_of_update_bench : update_bench -> string
(** Stable machine-readable rendering ([BENCH_update.json]): keys
    [bench], [scale], [results] (objects with [system], [backend],
    [rib_size], [updates], [updates_per_sec], [heap_words_per_route]),
    [speedup.cfca]/[speedup.pfca],
    [gate.ops_compared]/[gate.divergences], a [patch] object (burst /
    patched / full-recompile / coalescing / differential-gate counts)
    and an [incremental] object (snapshot-maintenance updates/sec with
    patching on vs off). Always valid JSON. *)

val print_update_bench : update_bench -> unit

(** One measured configuration of the multicore lookup-plane bench. *)
type mt_row = {
  mt_r_domains : int;
  mt_r_mode : string;  (** ["warm"] or ["cold"] *)
  mt_r_mlookups : float;  (** aggregate Mlookups/sec across domains *)
  mt_r_speedup : float;  (** vs the 1-domain run of the same mode *)
  mt_r_efficiency : float;  (** speedup / domains *)
  mt_r_published : int;
  mt_r_freed : int;
  mt_r_retired_peak : int;
}

(** Writer-side republish cost: mean latency of a delta-patched
    publication vs a from-scratch compile of the same covers. *)
type republish_stats = {
  mr_patched : int;  (** publications that patched the previous table *)
  mr_full : int;  (** publications that compiled the full cover *)
  mr_patched_us : float;  (** mean microseconds per patched publish *)
  mr_full_us : float;  (** mean microseconds per full compile *)
}

type mt_bench = {
  mb_scale : float;
  mb_cores : int;  (** {!Domain.recommended_domain_count} on this host *)
  mb_rib_size : int;
  mb_rows : mt_row list;
  mb_audit_samples : int;
  mb_audit_divergences : int;
      (** must be 0; the bench exits non-zero otherwise *)
  mb_live_violations : int;  (** must be 0 *)
  mb_counters_exact : bool;  (** must be [true] *)
  mb_republish : republish_stats;
}

type replay_bench = {
  rb_scale : float;
  rb_result : Replay.result;
}
(** The full-scale replay harness's result ({!Replay.run}) plus the
    scale it ran at. *)

val json_of_replay_bench : replay_bench -> string
(** Stable machine-readable rendering ([BENCH_replay.json]): keys
    [bench], [scale], [rib] (routes / fib_entries / load_seconds),
    [lookup] (packets, per_sec, l1/l2/fastpath hit ratios), [plane]
    (lookups, per_sec, hit_ratio, published / patched_publishes /
    full_compiles / freed), [update] (updates, per_sec, bursts,
    coalesced counts), [patch] (patched / full_recompiles /
    patched_cells), [audit] (probes, divergences, invariants_ok) and
    [memory] (heap_words_per_route, heap_mb_peak,
    budget_words_per_route, within_budget). Always valid JSON. *)

val print_replay_bench : replay_bench -> unit

val json_of_mt_bench : mt_bench -> string
(** Stable machine-readable rendering ([BENCH_mtlookup.json]): keys
    [bench], [scale], [cores], [rib_size], [results] (objects with
    [domains], [mode], [mlookups_per_sec], [speedup], [efficiency],
    [published], [freed], [retired_peak]), [audit.samples]/
    [audit.divergences]/[audit.live_violations]/[audit.counters_exact]
    and a [republish] object (patched vs full publication counts and
    mean latencies). Always valid JSON. *)

val print_mt_bench : mt_bench -> unit
