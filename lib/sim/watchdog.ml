open Cfca_trie
open Cfca_dataplane
open Cfca_check

type config = { interval : int; samples : int; seed : int }

let default_config = { interval = 100_000; samples = 32; seed = 0x57a7 }

type tier = Rebuild_memory | Rebuild_journal

let tier_to_string = function
  | Rebuild_memory -> "memory"
  | Rebuild_journal -> "journal"

type snapshot = {
  s_event : int;
  s_violation : string;
  s_tier : tier;
  s_l1_size : int;
  s_l2_size : int;
  s_fib_size : int;
}

type t = {
  cfg : config;
  rng : Random.State.t;
  mutable events : int;
  mutable checks : int;
  mutable recoveries : int;
  mutable memory_rebuilds : int;
  mutable journal_rebuilds : int;
  mutable snapshots : snapshot list; (* newest first *)
}

let create ?(config = default_config) () =
  if config.interval < 0 then invalid_arg "Watchdog.create: negative interval";
  {
    cfg = config;
    rng = Random.State.make [| config.seed |];
    events = 0;
    checks = 0;
    recoveries = 0;
    memory_rebuilds = 0;
    journal_rebuilds = 0;
    snapshots = [];
  }

let checks t = t.checks

let recoveries t = t.recoveries

let memory_rebuilds t = t.memory_rebuilds

let journal_rebuilds t = t.journal_rebuilds

let snapshots t = List.rev t.snapshots

let snap t tree pipeline violation tier =
  {
    s_event = t.events;
    s_violation = violation;
    s_tier = tier;
    s_l1_size = Pipeline.l1_size pipeline;
    s_l2_size = Pipeline.l2_size pipeline;
    s_fib_size = Bintrie.in_fib_count tree;
  }

(* [tree] is a thunk: recovery abandons the corrupted tree and builds a
   fresh one, so the post-recovery re-check must re-fetch it. *)
let check_now t ~tree ~pipeline ~recover =
  t.checks <- t.checks + 1;
  match
    Invariants.quick_check ~samples:t.cfg.samples ~rng:t.rng (tree ()) pipeline
  with
  | Ok () -> false
  | Error violation ->
      (* Escalate through the tiers until one leaves a provably clean
         state. A tier can decline ([recover] returns false — e.g. no
         journal attached) or fail its re-check; either way the next
         tier runs. Running out of tiers voids the run. *)
      let attempt tier =
        if not (recover ~violation ~tier) then `Unavailable
        else
          match
            Invariants.quick_check ~samples:t.cfg.samples ~rng:t.rng (tree ())
              pipeline
          with
          | Ok () -> `Clean
          | Error still -> `Still still
      in
      let fail_void = function
        | `Still still ->
            failwith
              (Printf.sprintf
                 "Watchdog: state still corrupt after recovery: %s" still)
        | _ ->
            failwith
              (Printf.sprintf
                 "Watchdog: no recovery tier available for violation: %s"
                 violation)
      in
      let tier =
        match attempt Rebuild_memory with
        | `Clean -> Rebuild_memory
        | (`Unavailable | `Still _) as first -> (
            match attempt Rebuild_journal with
            | `Clean -> Rebuild_journal
            | `Still _ as second -> fail_void second
            | `Unavailable -> fail_void first)
      in
      (match tier with
      | Rebuild_memory -> t.memory_rebuilds <- t.memory_rebuilds + 1
      | Rebuild_journal -> t.journal_rebuilds <- t.journal_rebuilds + 1);
      t.snapshots <- snap t (tree ()) pipeline violation tier :: t.snapshots;
      t.recoveries <- t.recoveries + 1;
      true

let observe t ~tree ~pipeline ~recover =
  t.events <- t.events + 1;
  if t.cfg.interval > 0 && t.events mod t.cfg.interval = 0 then
    ignore (check_now t ~tree ~pipeline ~recover)
