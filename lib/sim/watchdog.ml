open Cfca_trie
open Cfca_dataplane
open Cfca_check

type config = { interval : int; samples : int; seed : int }

let default_config = { interval = 100_000; samples = 32; seed = 0x57a7 }

type snapshot = {
  s_event : int;
  s_violation : string;
  s_l1_size : int;
  s_l2_size : int;
  s_fib_size : int;
}

type t = {
  cfg : config;
  rng : Random.State.t;
  mutable events : int;
  mutable checks : int;
  mutable recoveries : int;
  mutable snapshots : snapshot list; (* newest first *)
}

let create ?(config = default_config) () =
  if config.interval < 0 then invalid_arg "Watchdog.create: negative interval";
  {
    cfg = config;
    rng = Random.State.make [| config.seed |];
    events = 0;
    checks = 0;
    recoveries = 0;
    snapshots = [];
  }

let checks t = t.checks

let recoveries t = t.recoveries

let snapshots t = List.rev t.snapshots

let snap t tree pipeline violation =
  {
    s_event = t.events;
    s_violation = violation;
    s_l1_size = Pipeline.l1_size pipeline;
    s_l2_size = Pipeline.l2_size pipeline;
    s_fib_size = Bintrie.in_fib_count tree;
  }

(* [tree] is a thunk: recovery abandons the corrupted tree and builds a
   fresh one, so the post-recovery re-check must re-fetch it. *)
let check_now t ~tree ~pipeline ~recover =
  t.checks <- t.checks + 1;
  match
    Invariants.quick_check ~samples:t.cfg.samples ~rng:t.rng (tree ()) pipeline
  with
  | Ok () -> false
  | Error violation ->
      t.snapshots <- snap t (tree ()) pipeline violation :: t.snapshots;
      recover ~violation;
      t.recoveries <- t.recoveries + 1;
      (* the whole point of recovery is a provably clean state; a
         rebuild that still violates the invariants is a hard bug *)
      (match
         Invariants.quick_check ~samples:t.cfg.samples ~rng:t.rng (tree ())
           pipeline
       with
      | Ok () -> ()
      | Error still ->
          failwith
            (Printf.sprintf "Watchdog: state still corrupt after recovery: %s"
               still));
      true

let observe t ~tree ~pipeline ~recover =
  t.events <- t.events + 1;
  if t.cfg.interval > 0 && t.events mod t.cfg.interval = 0 then
    ignore (check_now t ~tree ~pipeline ~recover)
