(** Allocation-conscious instrument registry: monotonic counters,
    gauges and HDR-style log-bucketed histograms, with a
    snapshot/delta protocol mirroring how {!Cfca_sim.Engine} already
    diffs {!Cfca_dataplane.Pipeline} stats.

    Everything on the record path is integer arithmetic over
    pre-allocated storage: {!incr}, {!add} and {!observe} never box a
    float, never build a list and never allocate — the test-suite pins
    this with a [Gc.minor_words] gate. Reading is the expensive side:
    {!snapshot} copies every instrument into immutable records that can
    be diffed ({!delta}), merged ({!merge}) and queried
    ({!quantile}) long after the live registry has moved on.

    Histograms use fixed log-scale buckets ([sub_bits] significant bits
    per power of two, HdrHistogram-style): values up to
    [2 * 2^sub_bits] get exact buckets, larger values share a bucket
    with at most [2^-sub_bits] relative width, so p50/p90/p99 come out
    within that relative error without storing samples. *)

type t
(** A registry: a named collection of instruments. Instrument names are
    unique per registry — re-registering a name returns the existing
    instrument (same behaviour as Prometheus client libraries), so
    wiring code can be re-entrant. *)

val create : unit -> t

(** {1 Counters} *)

type counter
(** A monotonic event count. *)

val counter : t -> string -> counter

val incr : counter -> unit
(** Add one. Allocation-free. *)

val add : counter -> int -> unit
(** Add [n] (negative [n] is rejected with [Invalid_argument]:
    counters are monotonic — use a gauge for levels). *)

val value : counter -> int

val counter_name : counter -> string

(** {1 Gauges} *)

type gauge
(** An instantaneous level, read through a thunk at sample time (TCAM
    occupancy, arena live slots, FIB size...). The thunk must be cheap:
    it runs on every {!snapshot} and every timeseries sample. *)

val gauge : t -> string -> (unit -> int) -> gauge

val read : gauge -> int

val gauge_name : gauge -> string

(** {1 Histograms} *)

type histogram
(** Log-bucketed distribution of non-negative integer values
    (latencies in ns, sizes, burst lengths). *)

val histogram : ?sub_bits:int -> t -> string -> histogram
(** [sub_bits] (default 2, range 0..6) is the precision: each power of
    two is split into [2^sub_bits] sub-buckets. Re-registering an
    existing name ignores [sub_bits] and returns the live histogram. *)

val observe : histogram -> int -> unit
(** Record one value. Negative values are clamped to 0 (the record
    path must not raise); [max_int] is representable. Allocation-free:
    no float boxing, no closures, no ref cells. *)

val histogram_name : histogram -> string

(** {2 Bucket geometry}

    Exposed so tests can pin the bucketing and exporters can label
    axes. Buckets are indexed [0 .. bucket_count - 1]; every
    non-negative value maps to exactly one bucket and bucket ranges
    tile the integers without gaps. *)

val bucket_count : sub_bits:int -> int
(** Buckets needed to cover [0 .. max_int] at this precision. *)

val bucket_index : sub_bits:int -> int -> int
(** The bucket a value lands in ([v < 0] is clamped to 0). *)

val bucket_bounds : sub_bits:int -> int -> int * int
(** [(lo, hi)] inclusive value range of a bucket index;
    [bucket_index lo = bucket_index hi = idx]. *)

(** {1 Snapshots} *)

type hist_snapshot = {
  h_name : string;
  h_sub_bits : int;
  h_count : int;  (** observations recorded *)
  h_sum : int;  (** sum of observed values (clamped at overflow) *)
  h_min : int;  (** smallest observation; 0 when empty *)
  h_max : int;  (** largest observation; 0 when empty *)
  h_counts : int array;  (** per-bucket observation counts *)
}
(** An immutable copy of a histogram at snapshot time. *)

val hist_snapshot : histogram -> hist_snapshot

val quantile : hist_snapshot -> float -> int
(** [quantile h q] for [q] in [0, 1]: an upper bound of the value at
    rank [ceil (q * count)], i.e. the inclusive upper bound of the
    bucket holding that rank, clamped to [h_max] (so [quantile h 1.0 =
    h_max] exactly). 0 when the histogram is empty. *)

val merge : hist_snapshot -> hist_snapshot -> hist_snapshot
(** Combine two snapshots of the same shape (e.g. per-shard latency
    histograms): counts add, min/max widen. The name is taken from the
    first argument.
    @raise Invalid_argument on mismatched [h_sub_bits]. *)

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * int) list;  (** levels read at snapshot time *)
  s_histograms : hist_snapshot list;
}
(** Registry-wide snapshot, instruments in registration order. *)

val snapshot : t -> snapshot

val delta : earlier:snapshot -> later:snapshot -> snapshot
(** What happened between two snapshots of the same registry: counter
    values and histogram bucket counts subtract; gauges keep the later
    level (deltas of levels are meaningless). A histogram delta's
    [h_min]/[h_max] are inherited from [later] — the bucket counts are
    exact but the extremes of just the interval are not recoverable.
    Instruments only present in [later] pass through unchanged. *)
