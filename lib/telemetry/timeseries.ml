(* Each column owns a ring of [capacity] floats; the shared write
   cursor is [total mod capacity], so all rings stay aligned as long as
   no column is added after sampling starts (enforced). [tick] is kept
   trivial off the boundary — the per-event cost of telemetry is two
   compares and an increment. *)

type column = {
  col_name : string;
  col_sample : unit -> float;  (* encapsulates Delta/Level/ratio state *)
  col_data : float array;
}

type t = {
  ts_interval : int;
  capacity : int;
  mutable cols : column list;  (* reversed registration order *)
  ev_ring : int array;  (* events per sampled window *)
  mutable total : int;  (* windows sampled ever *)
  mutable in_window : int;  (* ticks since the last boundary *)
  mutable ticked : int;  (* ticks ever *)
}

let create ?(capacity = 4096) ~interval () =
  if interval <= 0 then invalid_arg "Timeseries.create: interval <= 0";
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity <= 0";
  {
    ts_interval = interval;
    capacity;
    cols = [];
    ev_ring = Array.make capacity 0;
    total = 0;
    in_window = 0;
    ticked = 0;
  }

type mode = [ `Delta | `Level ]

let register t name sample =
  if t.total > 0 then
    invalid_arg "Timeseries.track: cannot add columns after sampling started";
  if List.exists (fun c -> String.equal c.col_name name) t.cols then
    invalid_arg ("Timeseries.track: duplicate column " ^ name);
  t.cols <-
    { col_name = name; col_sample = sample; col_data = Array.make t.capacity 0.0 }
    :: t.cols

let track ?(mode = `Delta) t name read =
  let sample =
    match mode with
    | `Level -> fun () -> float_of_int (read ())
    | `Delta ->
        (* baseline at registration time: the column sums to the probe's
           end-of-run total minus its value right now *)
        let prev = ref (read ()) in
        fun () ->
          let v = read () in
          let d = v - !prev in
          prev := v;
          float_of_int d
  in
  register t name sample

let track_ratio t name ~num ~den =
  let pn = ref (num ()) and pd = ref (den ()) in
  register t name (fun () ->
      let n = num () and d = den () in
      let dn = n - !pn and dd = d - !pd in
      pn := n;
      pd := d;
      if dd = 0 then 0.0 else float_of_int dn /. float_of_int dd)

let track_level_ratio t name ~num ~den =
  register t name (fun () ->
      let d = den () in
      if d = 0 then 0.0 else float_of_int (num ()) /. float_of_int d)

let track_counter t c =
  track t (Metrics.counter_name c) (fun () -> Metrics.value c)

let track_gauge t g =
  track ~mode:`Level t (Metrics.gauge_name g) (fun () -> Metrics.read g)

let sample t =
  let idx = t.total mod t.capacity in
  t.ev_ring.(idx) <- t.in_window;
  List.iter (fun c -> c.col_data.(idx) <- c.col_sample ()) t.cols;
  t.total <- t.total + 1;
  t.in_window <- 0

let tick t =
  t.ticked <- t.ticked + 1;
  t.in_window <- t.in_window + 1;
  if t.in_window >= t.ts_interval then sample t

let flush t = if t.in_window > 0 then sample t

let interval t = t.ts_interval

let ticks t = t.ticked

let columns t = List.rev_map (fun c -> c.col_name) t.cols

let total_windows t = t.total

let windows t = min t.total t.capacity

let dropped t = t.total - windows t

let first_window t = dropped t + 1

let ring_to_array t ring =
  let n = windows t in
  if t.total <= t.capacity then Array.sub ring 0 n
  else Array.init n (fun i -> ring.((t.total + i) mod t.capacity))

let window_events t = ring_to_array t t.ev_ring

let quantile t name q =
  if q < 0.0 || q > 1.0 then invalid_arg "Timeseries.quantile: q outside [0,1]";
  match List.find_opt (fun c -> String.equal c.col_name name) t.cols with
  | None -> raise Not_found
  | Some c ->
      let n = windows t in
      if n = 0 then 0.0
      else begin
        let a =
          if t.total <= t.capacity then Array.sub c.col_data 0 n
          else Array.init n (fun i -> c.col_data.((t.total + i) mod t.capacity))
        in
        Array.sort compare a;
        (* nearest-rank on the retained windows, like Metrics.quantile *)
        let rank = int_of_float (ceil (q *. float_of_int n)) in
        a.(max 0 (min (n - 1) (rank - 1)))
      end

let get t name =
  match List.find_opt (fun c -> String.equal c.col_name name) t.cols with
  | None -> raise Not_found
  | Some c ->
      let n = windows t in
      if t.total <= t.capacity then Array.sub c.col_data 0 n
      else Array.init n (fun i -> c.col_data.((t.total + i) mod t.capacity))
