(** Windowed series collector: sample a set of registered probes every
    [interval] events into ring-buffered per-column series — the
    hit-ratio-over-time / occupancy-over-trace curves of the paper's
    evaluation figures.

    The driver calls {!tick} once per event (packet or BGP update);
    every [interval]-th tick closes a window and samples every column.
    {!tick} itself is three integer mutations off the window boundary,
    so it is safe on the per-packet path; the sampling work (running
    the probe thunks) happens once per window.

    Columns come in three flavours:
    - [`Delta] (the default for {!track}): the probe reads a cumulative
      total (a {!Metrics.counter}, a {!Cfca_dataplane.Pipeline.stats}
      field) and the column records the per-window increment. The
      baseline is captured at registration time, so register {e after}
      any warm-up/reset and the column sums exactly to the end-of-run
      total minus the registration-time value.
    - [`Level] : the probe reads an instantaneous level (TCAM
      occupancy, arena live slots) recorded as-is.
    - {!track_ratio}: per-window quotient of two cumulative probes
      (e.g. hits/packets — the hit ratio {e of that window}, not
      cumulative).

    Storage is a fixed ring (default 4096 windows): a longer run
    overwrites the oldest windows and counts them in {!dropped}, the
    window numbering stays absolute. *)

type t

val create : ?capacity:int -> interval:int -> unit -> t
(** [capacity] is the ring size in windows (default 4096).
    @raise Invalid_argument if [interval <= 0] or [capacity <= 0]. *)

type mode = [ `Delta  (** per-window increment of a cumulative probe *)
            | `Level  (** instantaneous level at window close *) ]

val track : ?mode:mode -> t -> string -> (unit -> int) -> unit
(** Register a column. Column names are unique; re-registering a name
    is an error. All registration must happen before the first window
    closes ([Invalid_argument] otherwise — the rings must stay
    aligned). *)

val track_ratio : t -> string -> num:(unit -> int) -> den:(unit -> int) -> unit
(** Per-window [Δnum / Δden] of two cumulative probes; windows where
    [Δden = 0] record [0.]. *)

val track_level_ratio :
  t -> string -> num:(unit -> int) -> den:(unit -> int) -> unit
(** Instantaneous [num () / den ()] at window close ([0.] when
    [den () = 0]) — occupancy fractions, real/fake node ratios. *)

val track_counter : t -> Metrics.counter -> unit
(** {!track} the counter's per-window increments under its own name. *)

val track_gauge : t -> Metrics.gauge -> unit
(** {!track} the gauge as a [`Level] column under its own name. *)

val tick : t -> unit
(** Count one event; closes and samples a window every [interval]
    ticks. Allocation-free off the window boundary. *)

val flush : t -> unit
(** Close a final partial window if any events were ticked since the
    last boundary (traces are rarely an exact multiple of the
    interval). The partial window's event count is visible in
    {!window_events}. No-op on an exact boundary. *)

(** {1 Reading the series} *)

val interval : t -> int

val ticks : t -> int
(** Events ticked so far (including any not yet in a closed window). *)

val columns : t -> string list
(** Registration order. *)

val total_windows : t -> int
(** Windows sampled over the whole run (including dropped ones). *)

val windows : t -> int
(** Windows currently retained ([min total_windows capacity]). *)

val dropped : t -> int
(** Windows overwritten by ring wrap-around. *)

val first_window : t -> int
(** Absolute (1-based) number of the oldest retained window. *)

val window_events : t -> int array
(** Events in each retained window, oldest first — [interval]
    everywhere except possibly a trailing {!flush}ed partial window. *)

val get : t -> string -> float array
(** Retained samples of a column, oldest first.
    @raise Not_found for an unknown column name. *)

val quantile : t -> string -> float -> float
(** Nearest-rank quantile of a column's retained samples — e.g.
    [quantile ts "l1_misses" 0.99] is the p99 misses-per-window, the
    miss-burst tail the scenario gates score. [0.] when no window has
    closed yet.
    @raise Not_found for an unknown column name.
    @raise Invalid_argument if the quantile is outside [0, 1]. *)
