type event = { seq : int; time : float; kind : string; detail : string }

type t = {
  ring : event array;
  mutable total : int;
  mutable sink : (event -> unit) option;
}

let dummy = { seq = -1; time = 0.0; kind = ""; detail = "" }

let create ?(capacity = 8192) ?sink () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  { ring = Array.make capacity dummy; total = 0; sink }

let emit t ~time ~kind detail =
  let e = { seq = t.total; time; kind; detail } in
  t.ring.(t.total mod Array.length t.ring) <- e;
  t.total <- t.total + 1;
  match t.sink with None -> () | Some f -> f e

let set_sink t sink = t.sink <- sink

let total t = t.total

let retained t = min t.total (Array.length t.ring)

let dropped t = t.total - retained t

let events t =
  let cap = Array.length t.ring in
  let n = retained t in
  List.init n (fun i ->
      if t.total <= cap then t.ring.(i) else t.ring.((t.total + i) mod cap))
