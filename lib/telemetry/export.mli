(** Render telemetry as CSV and hand-rolled JSON, in the same style as
    the bench harness's [BENCH_*.json] artifacts (no JSON library
    dependency, always-parseable output, stable key order — the golden
    tests pin the byte-for-byte format).

    The number/string helpers are exported so other hand-rolled JSON
    emitters ({!Cfca_sim.Report}) share one implementation. *)

(** {1 Formatting helpers} *)

val json_string : string -> string
(** Double-quoted, escaping quote, backslash, newline and control
    characters. *)

val json_float : float -> string
(** Fixed 4-decimal rendering; NaN and infinities are clamped to
    ["0.0"] so the output always parses (the [BENCH_*.json]
    convention). *)

val json_number : float -> string
(** Shortest-faithful rendering for series values: integer-valued
    floats print with no fraction (["100000"]), others with up to 6
    decimals, trailing zeros trimmed (["0.9876"]). Non-finite values
    clamp to ["0"]. Also the CSV cell format. *)

(** {1 CSV} *)

val series_csv : Timeseries.t -> string
(** Header [window,events,<col>,...] (columns in registration order),
    one row per retained window with its absolute window number. *)

val histograms_csv : Metrics.snapshot -> string
(** Header [histogram,count,sum,min,max,p50,p90,p99], one row per
    histogram. *)

val trace_csv : Trace.t -> string
(** Header [seq,time,kind,detail], one row per retained event; cells
    are quoted per RFC 4180 when they contain separators. *)

(** {1 JSON} *)

val json :
  name:string -> Timeseries.t -> Metrics.snapshot -> Trace.t -> string
(** One self-describing document: [telemetry] (the run name),
    [interval], [windows]/[first_window]/[dropped_windows],
    [window_events], [series] (name + retained values per column),
    [counters], [gauges], [histograms] (count/sum/min/max/p50/p90/p99)
    and [trace] (emitted/dropped totals). *)

(** {1 Files} *)

val write :
  dir:string ->
  name:string ->
  Timeseries.t ->
  Metrics.t ->
  Trace.t ->
  string list
(** Write [<name>_series.csv], [<name>_histograms.csv],
    [<name>_trace.csv] and [<name>_telemetry.json] under [dir]
    (created, with parents, if missing) and return the paths written.
    Each file goes through {!Cfca_wire.Atomic_file.write} (tmp +
    rename), so an interrupted export never leaves a torn artifact. *)
