(** Structured event log: the discrete, low-rate happenings a series
    cannot express — cache installs/evicts/promotions, watchdog
    recoveries, snapshot invalidations — with bounded buffering and a
    pluggable sink.

    Events are retained in a fixed ring (default 8192): long runs keep
    the newest events and count the overwritten ones in {!dropped}. A
    [sink] sees {e every} event at emit time regardless of the ring, so
    streaming consumers (a log file, a test harness) never lose any.

    This module shares its name with {!Cfca_traffic.Trace} (the packet
    trace); code that opens [Cfca_traffic] must refer to this one
    fully qualified as [Cfca_telemetry.Trace]. *)

type event = {
  seq : int;  (** 0-based emit sequence number *)
  time : float;  (** simulated seconds (whatever clock the emitter uses) *)
  kind : string;  (** event class, e.g. ["evict_l1"], ["watchdog_recovery"] *)
  detail : string;  (** free-form payload, e.g. the prefix involved *)
}

type t

val create : ?capacity:int -> ?sink:(event -> unit) -> unit -> t
(** [capacity] is the ring size in events (default 8192).
    @raise Invalid_argument if [capacity <= 0]. *)

val emit : t -> time:float -> kind:string -> string -> unit
(** Record one event (and pass it to the sink, if any). *)

val set_sink : t -> (event -> unit) option -> unit

val events : t -> event list
(** Retained events, oldest first. *)

val total : t -> int
(** Events emitted over the whole run. *)

val dropped : t -> int
(** Events overwritten by ring wrap-around ([total - retained]). *)
