(* Instruments are plain mutable records over pre-allocated int
   storage; the record path (incr/add/observe) is integer-only so the
   per-packet/per-update hot loops can tick instruments without
   allocating. All reading goes through immutable snapshots. *)

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; g_read : unit -> int }

type histogram = {
  hh_name : string;
  hh_sub_bits : int;
  hh_counts : int array;
  mutable hh_count : int;
  mutable hh_sum : int;
  mutable hh_min : int;
  mutable hh_max : int;
}

type t = {
  (* registration order, kept reversed; snapshot re-reverses *)
  mutable counters : counter list;
  mutable gauges : gauge list;
  mutable histograms : histogram list;
}

let create () = { counters = []; gauges = []; histograms = [] }

(* -- bucket geometry ------------------------------------------------- *)

(* HdrHistogram-style: each power of two is split into [2^sub_bits]
   equal sub-buckets. Values below [2 * 2^sub_bits] get an exact bucket
   each; above that, the bucket of [v] keeps the top [sub_bits + 1]
   significant bits, so the relative bucket width never exceeds
   [2^-sub_bits]. The index formula makes consecutive buckets tile the
   integers with no gaps (pinned by the boundary tests). *)

let rec msb_from v acc = if v <= 1 then acc else msb_from (v lsr 1) (acc + 1)

let msb v = msb_from v 0

let check_sub_bits sub_bits =
  if sub_bits < 0 || sub_bits > 6 then
    invalid_arg "Metrics: sub_bits must be in 0..6"

let bucket_index ~sub_bits v =
  let v = if v < 0 then 0 else v in
  let sub_count = 1 lsl sub_bits in
  if v < 2 * sub_count then v
  else
    let shift = msb v - sub_bits in
    ((shift + 1) * sub_count) + (v lsr shift) - sub_count

let bucket_count ~sub_bits =
  check_sub_bits sub_bits;
  bucket_index ~sub_bits max_int + 1

let bucket_bounds ~sub_bits idx =
  let sub_count = 1 lsl sub_bits in
  if idx < 0 || idx >= bucket_count ~sub_bits then
    invalid_arg "Metrics.bucket_bounds: index out of range";
  if idx < 2 * sub_count then (idx, idx)
  else
    let shift = (idx / sub_count) - 1 in
    let lo = (sub_count + (idx mod sub_count)) lsl shift in
    (lo, lo + (1 lsl shift) - 1)

(* -- registration ---------------------------------------------------- *)

let counter t name =
  match List.find_opt (fun c -> String.equal c.c_name name) t.counters with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      t.counters <- c :: t.counters;
      c

let gauge t name read =
  match List.find_opt (fun g -> String.equal g.g_name name) t.gauges with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_read = read } in
      t.gauges <- g :: t.gauges;
      g

let histogram ?(sub_bits = 2) t name =
  match
    List.find_opt (fun h -> String.equal h.hh_name name) t.histograms
  with
  | Some h -> h
  | None ->
      check_sub_bits sub_bits;
      let h =
        {
          hh_name = name;
          hh_sub_bits = sub_bits;
          hh_counts = Array.make (bucket_count ~sub_bits) 0;
          hh_count = 0;
          hh_sum = 0;
          hh_min = 0;
          hh_max = 0;
        }
      in
      t.histograms <- h :: t.histograms;
      h

(* -- record path ----------------------------------------------------- *)

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  c.c_value <- c.c_value + n

let value c = c.c_value

let counter_name c = c.c_name

let read g = g.g_read ()

let gauge_name g = g.g_name

let observe h v =
  let v = if v < 0 then 0 else v in
  let idx = bucket_index ~sub_bits:h.hh_sub_bits v in
  h.hh_counts.(idx) <- h.hh_counts.(idx) + 1;
  if h.hh_count = 0 then begin
    h.hh_min <- v;
    h.hh_max <- v
  end
  else begin
    if v < h.hh_min then h.hh_min <- v;
    if v > h.hh_max then h.hh_max <- v
  end;
  h.hh_count <- h.hh_count + 1;
  let s = h.hh_sum + v in
  (* saturate instead of wrapping: sums feed means and reports *)
  h.hh_sum <- (if s < 0 then max_int else s)

let histogram_name h = h.hh_name

(* -- snapshots ------------------------------------------------------- *)

type hist_snapshot = {
  h_name : string;
  h_sub_bits : int;
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_counts : int array;
}

let hist_snapshot h =
  {
    h_name = h.hh_name;
    h_sub_bits = h.hh_sub_bits;
    h_count = h.hh_count;
    h_sum = h.hh_sum;
    h_min = h.hh_min;
    h_max = h.hh_max;
    h_counts = Array.copy h.hh_counts;
  }

let quantile s q =
  if s.h_count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int s.h_count)) in
      if r < 1 then 1 else if r > s.h_count then s.h_count else r
    in
    let n = Array.length s.h_counts in
    let rec go i cum =
      if i >= n then s.h_max
      else
        let cum = cum + s.h_counts.(i) in
        if cum >= rank then
          let _, hi = bucket_bounds ~sub_bits:s.h_sub_bits i in
          if hi > s.h_max then s.h_max else hi
        else go (i + 1) cum
    in
    go 0 0
  end

let merge a b =
  if a.h_sub_bits <> b.h_sub_bits then
    invalid_arg "Metrics.merge: sub_bits mismatch";
  let sum =
    let s = a.h_sum + b.h_sum in
    if s < 0 then max_int else s
  in
  {
    h_name = a.h_name;
    h_sub_bits = a.h_sub_bits;
    h_count = a.h_count + b.h_count;
    h_sum = sum;
    h_min =
      (if a.h_count = 0 then b.h_min
       else if b.h_count = 0 then a.h_min
       else min a.h_min b.h_min);
    h_max =
      (if a.h_count = 0 then b.h_max
       else if b.h_count = 0 then a.h_max
       else max a.h_max b.h_max);
    h_counts = Array.init (Array.length a.h_counts) (fun i ->
        a.h_counts.(i) + b.h_counts.(i));
  }

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * int) list;
  s_histograms : hist_snapshot list;
}

let snapshot t =
  {
    s_counters =
      List.rev_map (fun c -> (c.c_name, c.c_value)) t.counters;
    s_gauges = List.rev_map (fun g -> (g.g_name, g.g_read ())) t.gauges;
    s_histograms = List.rev_map hist_snapshot t.histograms;
  }

let delta ~earlier ~later =
  let counter (name, v) =
    match List.assoc_opt name earlier.s_counters with
    | Some v0 -> (name, v - v0)
    | None -> (name, v)
  in
  let hist (h : hist_snapshot) =
    match
      List.find_opt
        (fun (e : hist_snapshot) -> String.equal e.h_name h.h_name)
        earlier.s_histograms
    with
    | Some e when e.h_sub_bits = h.h_sub_bits ->
        {
          h with
          h_count = h.h_count - e.h_count;
          h_sum = h.h_sum - e.h_sum;
          (* per-interval extremes are not recoverable from totals:
             keep the later snapshot's, which bound them *)
          h_counts =
            Array.init (Array.length h.h_counts) (fun i ->
                h.h_counts.(i) - e.h_counts.(i));
        }
    | _ -> h
  in
  {
    s_counters = List.map counter later.s_counters;
    s_gauges = later.s_gauges;
    s_histograms = List.map hist later.s_histograms;
  }
