(* Hand-rolled output, like the bench harness's BENCH_*.json: one
   artifact is not worth a serialization dependency, and the formats
   are pinned byte-for-byte by golden tests so changes are deliberate. *)

let json_float f =
  if f <> f || f = infinity || f = neg_infinity then "0.0"
  else Printf.sprintf "%.4f" f

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_number f =
  if f <> f || f = infinity || f = neg_infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else begin
    (* up to 6 decimals, trailing zeros trimmed: "0.5", "0.987654" *)
    let s = Printf.sprintf "%.6f" f in
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = '0' do
      decr n
    done;
    if !n > 0 && s.[!n - 1] = '.' then decr n;
    String.sub s 0 !n
  end

(* -- CSV ------------------------------------------------------------- *)

let csv_cell s =
  if
    String.exists
      (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r')
      s
  then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let series_csv ts =
  let cols = Timeseries.columns ts in
  let data = List.map (fun c -> Timeseries.get ts c) cols in
  let events = Timeseries.window_events ts in
  let first = Timeseries.first_window ts in
  let b = Buffer.create 4096 in
  Buffer.add_string b "window,events";
  List.iter
    (fun c ->
      Buffer.add_char b ',';
      Buffer.add_string b (csv_cell c))
    cols;
  Buffer.add_char b '\n';
  Array.iteri
    (fun i ev ->
      Buffer.add_string b (string_of_int (first + i));
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int ev);
      List.iter
        (fun col ->
          Buffer.add_char b ',';
          Buffer.add_string b (json_number col.(i)))
        data;
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

let hist_quantiles h =
  Metrics.
    (quantile h 0.50, quantile h 0.90, quantile h 0.99)

let histograms_csv (s : Metrics.snapshot) =
  let b = Buffer.create 512 in
  Buffer.add_string b "histogram,count,sum,min,max,p50,p90,p99\n";
  List.iter
    (fun (h : Metrics.hist_snapshot) ->
      let p50, p90, p99 = hist_quantiles h in
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%d,%d,%d,%d,%d,%d\n" (csv_cell h.Metrics.h_name)
           h.Metrics.h_count h.Metrics.h_sum h.Metrics.h_min h.Metrics.h_max
           p50 p90 p99))
    s.Metrics.s_histograms;
  Buffer.contents b

let trace_csv tr =
  let b = Buffer.create 1024 in
  Buffer.add_string b "seq,time,kind,detail\n";
  List.iter
    (fun (e : Trace.event) ->
      Buffer.add_string b
        (Printf.sprintf "%d,%s,%s,%s\n" e.Trace.seq (json_number e.Trace.time)
           (csv_cell e.Trace.kind) (csv_cell e.Trace.detail)))
    (Trace.events tr);
  Buffer.contents b

(* -- JSON ------------------------------------------------------------ *)

let json ~name ts (snap : Metrics.snapshot) tr =
  let b = Buffer.create 4096 in
  let add = Buffer.add_string b in
  add "{\n";
  add (Printf.sprintf "  \"telemetry\": %s,\n" (json_string name));
  add (Printf.sprintf "  \"interval\": %d,\n" (Timeseries.interval ts));
  add (Printf.sprintf "  \"windows\": %d,\n" (Timeseries.windows ts));
  add (Printf.sprintf "  \"first_window\": %d,\n" (Timeseries.first_window ts));
  add
    (Printf.sprintf "  \"dropped_windows\": %d,\n" (Timeseries.dropped ts));
  add "  \"window_events\": [";
  add
    (String.concat ", "
       (Array.to_list
          (Array.map string_of_int (Timeseries.window_events ts))));
  add "],\n";
  add "  \"series\": [\n";
  add
    (String.concat ",\n"
       (List.map
          (fun col ->
            let values = Timeseries.get ts col in
            Printf.sprintf "    {\"name\": %s, \"values\": [%s]}"
              (json_string col)
              (String.concat ", "
                 (Array.to_list (Array.map json_number values))))
          (Timeseries.columns ts)));
  add "\n  ],\n";
  add "  \"counters\": [";
  add
    (String.concat ", "
       (List.map
          (fun (n, v) ->
            Printf.sprintf "{\"name\": %s, \"value\": %d}" (json_string n) v)
          snap.Metrics.s_counters));
  add "],\n";
  add "  \"gauges\": [";
  add
    (String.concat ", "
       (List.map
          (fun (n, v) ->
            Printf.sprintf "{\"name\": %s, \"value\": %d}" (json_string n) v)
          snap.Metrics.s_gauges));
  add "],\n";
  add "  \"histograms\": [\n";
  add
    (String.concat ",\n"
       (List.map
          (fun (h : Metrics.hist_snapshot) ->
            let p50, p90, p99 = hist_quantiles h in
            Printf.sprintf
              "    {\"name\": %s, \"count\": %d, \"sum\": %d, \"min\": %d, \
               \"max\": %d, \"p50\": %d, \"p90\": %d, \"p99\": %d}"
              (json_string h.Metrics.h_name)
              h.Metrics.h_count h.Metrics.h_sum h.Metrics.h_min
              h.Metrics.h_max p50 p90 p99)
          snap.Metrics.s_histograms));
  add "\n  ],\n";
  add
    (Printf.sprintf "  \"trace\": {\"events\": %d, \"dropped\": %d}\n"
       (Trace.total tr) (Trace.dropped tr));
  add "}\n";
  Buffer.contents b

(* -- files ----------------------------------------------------------- *)

(* tmp + rename: an interrupted export leaves the previous artifact (or
   nothing), never a half-written CSV/JSON under the final name *)
let write_file path contents = Cfca_wire.Atomic_file.write path contents

let write ~dir ~name ts metrics tr =
  Cfca_wire.Atomic_file.mkdir_p dir;
  let snap = Metrics.snapshot metrics in
  let files =
    [
      (Filename.concat dir (name ^ "_series.csv"), series_csv ts);
      (Filename.concat dir (name ^ "_histograms.csv"), histograms_csv snap);
      (Filename.concat dir (name ^ "_trace.csv"), trace_csv tr);
      (Filename.concat dir (name ^ "_telemetry.json"), json ~name ts snap tr);
    ]
  in
  List.iter (fun (path, contents) -> write_file path contents) files;
  List.map fst files
