(* Bench-report baselines: the scenario tolerance gate generalized to
   the BENCH_*.json documents.

   The representation is deliberately schema-free: a report is flattened
   to dotted metric paths and every number pinned individually, so new
   bench fields are covered by re-pinning rather than by teaching this
   module their shape. What *is* schema-aware is the classifier: the
   path decides whether a metric is deterministic (exact pin),
   ratio-like, memory-like, or wall-clock (warn-only by default). *)

type kind = Exact | Ratio | Mem | Timing

let kind_name = function
  | Exact -> "exact"
  | Ratio -> "ratio"
  | Mem -> "mem"
  | Timing -> "timing"

let kind_of_name = function
  | "exact" -> Some Exact
  | "ratio" -> Some Ratio
  | "mem" -> Some Mem
  | "timing" -> Some Timing
  | _ -> None

let contains path sub =
  let n = String.length path and m = String.length sub in
  let rec go i = i + m <= n && (String.sub path i m = sub || go (i + 1)) in
  m > 0 && go 0

(* Substring classification over the full dotted path. Timing covers
   everything the machine or the scheduler owns: rates, latencies,
   speedups derived from them, core counts, and concurrency peaks
   (retired_peak, audit sample totals under domain interleaving). *)
let classify path =
  let has = contains path in
  if has "ratio" then Ratio
  else if has "heap" || has "_mb" then Mem
  else if
    has "ns_per_op" || has "per_sec" || has "_us" || has "_ns"
    || has "speedup" || has "efficiency" || has "mlookups" || has "seconds"
    || has "rate" || has "cores" || has "retired_peak" || has "samples"
  then Timing
  else Exact

let default_tol path expected =
  let abs_tol, rel_tol =
    match classify path with
    | Exact -> (0.0, 0.0)
    | Ratio -> (0.02, 0.03)
    | Mem -> if contains path "_mb" then (8.0, 0.30) else (1.5, 0.05)
    | Timing -> (0.0, 0.60)
  in
  {
    Baseline.t_metric = path;
    t_expected = expected;
    t_abs = abs_tol;
    t_rel = rel_tol;
  }

type metric = { m_kind : kind; m_tol : Baseline.tol }

type bench = { pb_bench : string; pb_file : string; pb_metrics : metric list }

type t = { p_version : int; p_benches : bench list }

let magic = "cfca-bench"

let catalog =
  [
    ("lookup", "BENCH_lookup.json");
    ("update", "BENCH_update.json");
    ("mt-lookup", "BENCH_mtlookup.json");
    ("replay", "BENCH_replay.json");
  ]

(* -- flattening ------------------------------------------------------ *)

let flatten (doc : Baseline.json) =
  let out = ref [] in
  let join path k = if path = "" then k else path ^ "." ^ k in
  let label_of = function
    | Baseline.J_obj kvs ->
        String.concat ":"
          (List.filter_map
             (function _, Baseline.J_str s -> Some s | _ -> None)
             kvs)
    | _ -> ""
  in
  let rec go path = function
    | Baseline.J_num v -> out := (path, v) :: !out
    | Baseline.J_bool b -> out := (path, if b then 1.0 else 0.0) :: !out
    | Baseline.J_str _ | Baseline.J_null -> ()
    | Baseline.J_obj kvs -> List.iter (fun (k, v) -> go (join path k) v) kvs
    | Baseline.J_arr els ->
        List.iteri
          (fun i el ->
            let seg =
              match label_of el with
              | "" -> string_of_int i
              | lab -> Printf.sprintf "%d:%s" i lab
            in
            go (join path seg) el)
          els
  in
  go "" doc;
  List.rev !out

(* -- pinning --------------------------------------------------------- *)

let pin_document ~bench ~file text =
  match Baseline.parse_json text with
  | exception Baseline.Parse_error msg -> Error (file ^ ": " ^ msg)
  | doc ->
      Ok
        {
          pb_bench = bench;
          pb_file = file;
          pb_metrics =
            List.map
              (fun (path, v) ->
                { m_kind = classify path; m_tol = default_tol path v })
              (flatten doc);
        }

(* -- reading --------------------------------------------------------- *)

let field name = function
  | Baseline.J_obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> raise (Baseline.Parse_error ("missing field " ^ name)))
  | _ -> raise (Baseline.Parse_error ("expected an object holding " ^ name))

let num name j =
  match field name j with
  | Baseline.J_num f -> f
  | _ -> raise (Baseline.Parse_error ("field " ^ name ^ " must be a number"))

let str name j =
  match field name j with
  | Baseline.J_str s -> s
  | _ -> raise (Baseline.Parse_error ("field " ^ name ^ " must be a string"))

let arr name j =
  match field name j with
  | Baseline.J_arr l -> l
  | _ -> raise (Baseline.Parse_error ("field " ^ name ^ " must be an array"))

let of_string text =
  let bench_magic = magic in
  (* [Baseline.magic] ("cfca-scenarios") would shadow ours below *)
  let open Baseline in
  match parse_json text with
  | exception Parse_error msg -> Error msg
  | j -> (
      try
        if str "baselines" j <> bench_magic then
          raise (Parse_error "not a cfca-bench baseline file");
        let metric_of m =
          let kname = str "kind" m in
          match kind_of_name kname with
          | None -> raise (Parse_error ("unknown metric kind " ^ kname))
          | Some k ->
              {
                m_kind = k;
                m_tol =
                  {
                    t_metric = str "metric" m;
                    t_expected = num "expected" m;
                    t_abs = num "tol_abs" m;
                    t_rel = num "tol_rel" m;
                  };
              }
        in
        let bench_of b =
          {
            pb_bench = str "bench" b;
            pb_file = str "file" b;
            pb_metrics = List.map metric_of (arr "metrics" b);
          }
        in
        Ok
          {
            p_version = int_of_float (num "version" j);
            p_benches = List.map bench_of (arr "benches" j);
          }
      with Parse_error msg -> Error msg)

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> of_string text

let find t name =
  List.find_opt (fun b -> String.equal b.pb_bench name) t.p_benches

(* -- writing --------------------------------------------------------- *)

let to_json t =
  let open Cfca_telemetry.Export in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"baselines\": %s,\n  \"version\": %d,\n"
       (json_string magic) t.p_version);
  Buffer.add_string buf "  \"benches\": [\n";
  List.iteri
    (fun i b ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "    { \"bench\": %s,\n      \"file\": %s,\n\
                        \      \"metrics\": [\n"
           (json_string b.pb_bench) (json_string b.pb_file));
      List.iteri
        (fun k m ->
          if k > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf
            (Printf.sprintf
               "        { \"metric\": %s, \"kind\": %s, \"expected\": %s, \
                \"tol_abs\": %s, \"tol_rel\": %s }"
               (json_string m.m_tol.Baseline.t_metric)
               (json_string (kind_name m.m_kind))
               (json_number m.m_tol.Baseline.t_expected)
               (json_number m.m_tol.Baseline.t_abs)
               (json_number m.m_tol.Baseline.t_rel)))
        b.pb_metrics;
      Buffer.add_string buf "\n      ] }")
    t.p_benches;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* -- diffing --------------------------------------------------------- *)

type outcome = {
  o_kind : kind;
  o_tol : Baseline.tol;
  o_got : float option;
  o_verdict : Baseline.verdict;
}

let diff b text =
  match Baseline.parse_json text with
  | exception Baseline.Parse_error msg -> Error (b.pb_file ^ ": " ^ msg)
  | doc ->
      let fresh = flatten doc in
      Ok
        (List.map
           (fun m ->
             match List.assoc_opt m.m_tol.Baseline.t_metric fresh with
             | None ->
                 {
                   o_kind = m.m_kind;
                   o_tol = m.m_tol;
                   o_got = None;
                   o_verdict = Baseline.Fail;
                 }
             | Some got ->
                 {
                   o_kind = m.m_kind;
                   o_tol = m.m_tol;
                   o_got = Some got;
                   o_verdict = Baseline.check m.m_tol got;
                 })
           b.pb_metrics)

let gate ?(gate_timing = false) o =
  match (o.o_kind, o.o_verdict, o.o_got) with
  | Timing, Baseline.Fail, Some _ when not gate_timing -> Baseline.Warn
  | _, v, _ -> v

let unpinned b doc =
  let pinned =
    List.map (fun m -> m.m_tol.Baseline.t_metric) b.pb_metrics
  in
  List.filter_map
    (fun (path, _) ->
      if List.mem path pinned then None else Some path)
    (flatten doc)
