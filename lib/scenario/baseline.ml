(* Pinned score baselines and the tolerance gate over them.

   The JSON surface is deliberately tiny (objects, arrays, strings,
   numbers — what SCENARIO_BASELINES.json uses) and hand-rolled like
   the telemetry exporter: no parser dependency enters the build. *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_num of float
  | J_bool of bool
  | J_null

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          J_obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          J_arr (elements [])
        end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* -- schema ---------------------------------------------------------- *)

type tol = {
  t_metric : string;
  t_expected : float;
  t_abs : float;
  t_rel : float;
}

type pack_baseline = { pb_pack : string; pb_metrics : tol list }

type t = {
  b_version : int;
  b_scale : float;
  b_seed : int;
  b_packs : pack_baseline list;
}

let magic = "cfca-scenarios"

let field name = function
  | J_obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> raise (Parse_error ("missing field " ^ name)))
  | _ -> raise (Parse_error ("expected an object holding " ^ name))

let num name j =
  match field name j with
  | J_num f -> f
  | _ -> raise (Parse_error ("field " ^ name ^ " must be a number"))

let str name j =
  match field name j with
  | J_str s -> s
  | _ -> raise (Parse_error ("field " ^ name ^ " must be a string"))

let arr name j =
  match field name j with
  | J_arr l -> l
  | _ -> raise (Parse_error ("field " ^ name ^ " must be an array"))

let of_string text =
  match parse_json text with
  | exception Parse_error msg -> Error msg
  | j -> (
      try
        if str "baselines" j <> magic then
          raise (Parse_error "not a cfca-scenarios baseline file");
        let tol_of m =
          {
            t_metric = str "metric" m;
            t_expected = num "expected" m;
            t_abs = num "tol_abs" m;
            t_rel = num "tol_rel" m;
          }
        in
        let pack_of p =
          {
            pb_pack = str "pack" p;
            pb_metrics = List.map tol_of (arr "metrics" p);
          }
        in
        Ok
          {
            b_version = int_of_float (num "version" j);
            b_scale = num "scale" j;
            b_seed = int_of_float (num "seed" j);
            b_packs = List.map pack_of (arr "packs" j);
          }
      with Parse_error msg -> Error msg)

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> of_string text

let pack t name =
  List.find_opt (fun p -> String.equal p.pb_pack name) t.b_packs

(* -- verdicts -------------------------------------------------------- *)

type verdict = Pass | Warn | Fail

let verdict_name = function Pass -> "pass" | Warn -> "warn" | Fail -> "fail"

let allowed tol = Float.max tol.t_abs (tol.t_rel *. Float.abs tol.t_expected)

let check tol got =
  let d = Float.abs (got -. tol.t_expected) in
  let a = allowed tol in
  if d <= 0.5 *. a then Pass else if d <= a then Warn else Fail

(* -- writing --------------------------------------------------------- *)

(* Default tolerances per metric. Scores are deterministic for a fixed
   seed and scale, so the bands only absorb small *intended* behaviour
   drift (tuning a threshold, reordering an eviction tie-break) —
   anything larger is a regression the gate must catch. *)
let default_tol metric expected =
  let abs_tol, rel_tol =
    match metric with
    | "hit_ratio" | "l2_hit_ratio" -> (0.02, 0.03)
    | "miss_p99" | "miss_max" -> (25.0, 0.15)
    | "churn_ops" -> (50.0, 0.10)
    | "churn_per_sec" -> (1_000.0, 0.10)
    | _ -> (0.0, 0.10)
  in
  { t_metric = metric; t_expected = expected; t_abs = abs_tol; t_rel = rel_tol }

let of_scores ~scale ~seed scores =
  {
    b_version = 1;
    b_scale = scale;
    b_seed = seed;
    b_packs =
      List.map
        (fun (s : Score.t) ->
          {
            pb_pack = s.Score.s_pack;
            pb_metrics =
              List.filter_map
                (fun m ->
                  Option.map (default_tol m) (Score.metric s m))
                Score.gated_metrics;
          })
        scores;
  }

let to_json t =
  let open Cfca_telemetry.Export in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"baselines\": %s,\n  \"version\": %d,\n"
       (json_string magic) t.b_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"scale\": %s,\n  \"seed\": %d,\n"
       (json_number t.b_scale) t.b_seed);
  Buffer.add_string buf "  \"packs\": [\n";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "    { \"pack\": %s,\n      \"metrics\": [\n"
           (json_string p.pb_pack));
      List.iteri
        (fun k m ->
          if k > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf
            (Printf.sprintf
               "        { \"metric\": %s, \"expected\": %s, \"tol_abs\": %s, \
                \"tol_rel\": %s }"
               (json_string m.t_metric)
               (json_number m.t_expected)
               (json_number m.t_abs) (json_number m.t_rel)))
        p.pb_metrics;
      Buffer.add_string buf "\n      ] }")
    t.b_packs;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
