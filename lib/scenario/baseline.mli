(** Committed score baselines ([SCENARIO_BASELINES.json]) and the
    tolerance gate that diffs fresh scores against them.

    Each gated metric carries an absolute and a relative tolerance; the
    allowed drift is [max tol_abs (tol_rel * |expected|)]. A measured
    delta within half the allowance passes, within the allowance warns
    (close to the cliff — consider re-pinning), beyond it fails the
    gate. Scores are deterministic per seed and scale, so the bands
    absorb only small {e intended} behaviour drift. *)

type tol = {
  t_metric : string;  (** a {!Score.gated_metrics} name *)
  t_expected : float;
  t_abs : float;
  t_rel : float;
}

type pack_baseline = { pb_pack : string; pb_metrics : tol list }

type t = {
  b_version : int;
  b_scale : float;  (** pack scale the pins were measured at *)
  b_seed : int;  (** pack seed the pins were measured at *)
  b_packs : pack_baseline list;
}

val magic : string
(** The [baselines] discriminator field value, ["cfca-scenarios"]. *)

val of_string : string -> (t, string) result
(** Parse a baseline document; [Error] names the first problem
    (malformed JSON, wrong {!magic}, missing field). *)

val of_file : string -> (t, string) result

val pack : t -> string -> pack_baseline option
(** The pinned entry for one pack name, if any. *)

type verdict = Pass | Warn | Fail

val verdict_name : verdict -> string
(** ["pass"], ["warn"] or ["fail"]. *)

val allowed : tol -> float
(** The permitted absolute drift: [max t_abs (t_rel *. |t_expected|)]. *)

val check : tol -> float -> verdict
(** [check tol got] — {!Pass} within half the allowance, {!Warn} within
    the allowance, {!Fail} beyond. *)

val of_scores : scale:float -> seed:int -> Score.t list -> t
(** Pin fresh scores with the default per-metric tolerances — the
    [--write-baselines] path of [verify scenarios]. *)

val to_json : t -> string
(** Pretty-printed, committable baseline file. [of_string] of the
    result round-trips. *)

(** {1 Mini JSON} — exposed for the schema-pin tests *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_num of float
  | J_bool of bool
  | J_null

exception Parse_error of string

val parse_json : string -> json
(** @raise Parse_error on malformed input. *)
