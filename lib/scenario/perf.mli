(** Committed bench baselines ([BENCH_BASELINES.json]) and the
    tolerance gate that diffs fresh [BENCH_*.json] documents against
    them — the generalization of {!Baseline} from scenario scores to
    arbitrary bench reports.

    A bench report is any JSON document a bench target emits
    ([BENCH_lookup.json], [BENCH_update.json], [BENCH_mtlookup.json],
    [BENCH_replay.json]). {!flatten} turns one into a flat list of
    [(path, value)] metrics: every number becomes a metric named by its
    dotted path, booleans become [1]/[0], and array elements are
    labelled with their index plus the element's string-valued fields
    (so a lookup row renders as [results.0:flat-dir24:warm.ns_per_op]).
    Row order is part of the schema — reordering rows is a schema
    change and re-pins.

    Each pinned metric carries a {!kind} deciding how its drift is
    judged:

    - {!Exact} — deterministic for a fixed seed/scale/code (counts,
      sizes, divergence totals, gate booleans). Pinned with zero
      tolerance: any drift is either a real behaviour change (re-pin
      deliberately) or a regression.
    - {!Ratio} — hit ratios; deterministic but deliberately given a
      small band so threshold tuning doesn't thrash the pins.
    - {!Mem} — heap footprints. The arena words/route figure is
      deterministic (tight band); process-heap high-water marks move
      with GC scheduling (wide band).
    - {!Timing} — wall-clock rates and latencies. These are
      machine-dependent, so their failures are demoted to warnings by
      {!gate} unless the caller opts in ([--gate-timing] in
      [verify perf]); the pins still document the reference machine's
      numbers and catch order-of-magnitude collapses when gating is on.

    The drift rule is {!Baseline.check}:
    [allowed = max tol_abs (tol_rel * |expected|)], pass within half
    the allowance, warn within it, fail beyond. *)

type kind = Exact | Ratio | Mem | Timing

val kind_name : kind -> string
(** ["exact"], ["ratio"], ["mem"] or ["timing"] — the [kind] field of
    the baseline file. *)

val kind_of_name : string -> kind option

val classify : string -> kind
(** The default kind of a metric path, by substring: [ratio] →
    {!Ratio}; [heap]/[_mb] → {!Mem}; rates, latencies, speedups,
    efficiencies, core counts and scheduler-dependent peaks →
    {!Timing}; everything else {!Exact}. *)

val default_tol : string -> float -> Baseline.tol
(** The pin for one metric with the default per-kind tolerances. *)

type metric = { m_kind : kind; m_tol : Baseline.tol }

type bench = {
  pb_bench : string;  (** target name, e.g. ["lookup"] *)
  pb_file : string;  (** the report it pins, e.g. ["BENCH_lookup.json"] *)
  pb_metrics : metric list;
}

type t = { p_version : int; p_benches : bench list }

val magic : string
(** The [baselines] discriminator field value, ["cfca-bench"]. *)

val catalog : (string * string) list
(** Every known bench target and the report file it writes:
    [lookup], [update], [mt-lookup], [replay]. *)

val flatten : Baseline.json -> (string * float) list
(** Flat [(path, value)] metrics of a bench document, in document
    order. Strings contribute to array-element labels but are not
    metrics themselves. *)

val pin_document : bench:string -> file:string -> string -> (bench, string) result
(** Pin every metric of one report text with {!default_tol}. *)

val of_string : string -> (t, string) result
(** Parse a baseline document; [Error] names the first problem
    (malformed JSON, wrong {!magic}, unknown kind, missing field). *)

val of_file : string -> (t, string) result

val to_json : t -> string
(** Pretty-printed, committable baseline file; [of_string] of the
    result round-trips. *)

val find : t -> string -> bench option
(** The pinned entry for one bench target name, if any. *)

(** {1 Diffing} *)

type outcome = {
  o_kind : kind;
  o_tol : Baseline.tol;
  o_got : float option;  (** [None]: pinned metric missing from the report *)
  o_verdict : Baseline.verdict;  (** raw {!Baseline.check}; see {!gate} *)
}

val diff : bench -> string -> (outcome list, string) result
(** Diff one baseline entry against fresh report text. A pinned metric
    absent from the report is a {!Baseline.Fail} (schema break). *)

val gate : ?gate_timing:bool -> outcome -> Baseline.verdict
(** The enforced verdict of an outcome: {!Timing} failures demote to
    {!Baseline.Warn} unless [gate_timing] (missing metrics always
    fail). Other kinds pass through unchanged. *)

val unpinned : bench -> Baseline.json -> string list
(** Metric paths present in a report but absent from the baseline —
    schema drift the pins don't cover yet (re-pin to adopt them). *)
