(** Per-pack score card: the metrics a scenario is gated on.

    Every field except [s_update_wall_s] is a deterministic function of
    the pack's seed and scale — the churn rate is measured over
    {e simulated} time — so two replays must agree byte-for-byte on
    {!deterministic_json}, and the committed baselines never flake on
    machine speed. *)

type t = {
  s_pack : string;
  s_packets : int;  (** packets processed (must equal the pack's meta) *)
  s_updates : int;  (** BGP updates replayed *)
  s_hit_ratio : float;  (** L1 hit ratio over the whole run *)
  s_l2_hit_ratio : float;  (** L1+L2 (SRAM-or-better) hit ratio *)
  s_miss_p99 : float;
      (** p99 of L1 misses per telemetry window — the miss-burst tail *)
  s_miss_max : float;  (** worst window's L1 misses *)
  s_churn_ops : int;
      (** rule churn: cache installs + evictions (both levels) plus
          control-plane FIB transitions *)
  s_churn_per_sec : float;  (** [s_churn_ops] over simulated seconds *)
  s_oracle_divergences : int;
      (** phase audits where the system disagreed with {!Cfca_check.Oracle} *)
  s_invariant_violations : int;
      (** phase audits where [Invariants.quick_check] failed *)
  s_recoveries : int;  (** watchdog full-reset recoveries (must be 0) *)
  s_snapshot_patches : int;
      (** compiled-snapshot generations produced by in-place patching *)
  s_snapshot_full_rebuilds : int;
      (** compiled-snapshot generations produced by a full recompile *)
  s_update_wall_s : float;
      (** wall-clock control-plane seconds — informational only, never
          gated, excluded from {!deterministic_json} *)
}

val of_run :
  pack:string ->
  pps:float ->
  oracle_divergences:int ->
  invariant_violations:int ->
  Cfca_sim.Engine.run_result ->
  Cfca_sim.Engine.telemetry ->
  t
(** Distil one engine run (plus the runner's audit totals) into a
    score card; [pps] converts simulated time to churn per second. *)

val gated_metrics : string list
(** Metric names a baseline file may pin, in canonical order. *)

val metric : t -> string -> float option
(** Look up a gated metric by its baseline-file name. *)

val to_json : t -> string
(** One JSON object, all fields. *)

val deterministic_json : t -> string
(** {!to_json} minus the wall-clock field — the byte string replay
    determinism is asserted on. *)
