open Cfca_bgp
open Cfca_rib
open Cfca_traffic
open Cfca_check
module E = Cfca_sim.Engine

type phase_report = {
  ph_label : string;
  ph_invariants : (unit, string) result;
  ph_oracle : (unit, string) result;
}

type outcome = {
  o_meta : Pack.meta;
  o_score : Score.t;
  o_digest : string;
  o_phases : phase_report list;
  o_counts_ok : bool;
}

(* -- event-stream digest --------------------------------------------- *)

(* FNV-1a over a canonical byte encoding of every event. Int64 keeps
   the fold exact on 32- and 64-bit hosts alike. *)

let fnv_prime = 0x100000001b3L

let fnv_offset = 0xcbf29ce484222325L

let fold_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fold_int32 h v =
  let h = fold_byte h (v lsr 24) in
  let h = fold_byte h (v lsr 16) in
  let h = fold_byte h (v lsr 8) in
  fold_byte h v

let fold_string h s =
  let h = ref h in
  String.iter (fun c -> h := fold_byte !h (Char.code c)) s;
  !h

let fold_event h ev =
  match ev with
  | Trace.Packet dst -> fold_int32 (fold_byte h 1) (Cfca_prefix.Ipv4.to_int dst)
  | Trace.Update u ->
      let p = u.Bgp_update.prefix in
      let h = fold_byte h 2 in
      let h = fold_int32 h (Cfca_prefix.Ipv4.to_int (Cfca_prefix.Prefix.network p)) in
      let h = fold_byte h (Cfca_prefix.Prefix.length p) in
      (match u.Bgp_update.action with
      | Bgp_update.Announce nh -> fold_byte (fold_byte h 3) (Cfca_prefix.Nexthop.to_int nh)
      | Bgp_update.Withdraw -> fold_byte h 4)
  | Trace.Mark label -> fold_string (fold_byte h 5) label

let hex h = Printf.sprintf "%016Lx" h

(* -- the gated replay ------------------------------------------------ *)

let run_pack ?(seed = 0x5EED) ?watchdog ?journal ?chaos (pack : Pack.t) =
  let meta = pack.Pack.meta in
  let events = meta.Pack.m_packets + meta.Pack.m_updates in
  (* ~128 windows per run so the miss-burst tail has real support even
     at smoke scale *)
  let interval = max 500 (events / 128) in
  let tel = E.telemetry ~interval () in
  let oracle = Oracle.create ~default_nh:pack.Pack.default_nh in
  Oracle.load oracle (Array.to_list (Rib.entries pack.Pack.rib));
  let digest = ref fnv_offset in
  let touched = ref [] in
  let phases = ref [] in
  let rng = Random.State.make [| seed; 0x0A11 |] in
  let on_mark label (a : E.access) =
    let inv =
      Invariants.quick_check ~samples:64 ~rng (a.E.a_tree ()) a.E.a_pipeline
    in
    let orc =
      Oracle.equiv oracle ~lookup:a.E.a_lookup
        (Oracle.probes oracle ~touched:!touched rng)
    in
    touched := [];
    phases := { ph_label = label; ph_invariants = inv; ph_oracle = orc } :: !phases;
    (* chaos runs after the audits: the damage it does is this phase's
       successor's problem — and the watchdog's *)
    match chaos with Some f -> f label a | None -> ()
  in
  let iter f =
    pack.Pack.iter (fun ~time ev ->
        digest := fold_event !digest ev;
        (match ev with
        | Trace.Update u ->
            (* the oracle shadows the update stream: at every mark the
               system must forward exactly like this reference *)
            Oracle.apply oracle u;
            touched := u.Bgp_update.prefix :: !touched
        | Trace.Packet _ | Trace.Mark _ -> ());
        f ~time ev)
  in
  let r =
    E.run_events ~seed ?watchdog ?journal ~telemetry:tel ~on_mark E.Cfca
      pack.Pack.config ~default_nh:pack.Pack.default_nh pack.Pack.rib iter
  in
  (* every pack ends on a mark, so the live trie and pipeline were
     audited at end-of-stream; one last full-table sweep checks the
     surviving forwarding function once more *)
  let final =
    {
      ph_label = "final";
      ph_invariants = Ok ();
      ph_oracle =
        Oracle.equiv oracle ~lookup:r.E.r_lookup
          (Oracle.probes oracle ~touched:[] rng);
    }
  in
  let phases = List.rev (final :: !phases) in
  let count pick =
    List.length (List.filter (fun p -> Result.is_error (pick p)) phases)
  in
  let score =
    Score.of_run ~pack:meta.Pack.m_name ~pps:pack.Pack.pps
      ~oracle_divergences:(count (fun p -> p.ph_oracle))
      ~invariant_violations:(count (fun p -> p.ph_invariants))
      r tel
  in
  let counts_ok =
    score.Score.s_packets = meta.Pack.m_packets
    && score.Score.s_updates = meta.Pack.m_updates
    && List.map (fun p -> p.ph_label) phases
       = meta.Pack.m_phases @ [ "final" ]
  in
  {
    o_meta = meta;
    o_score = score;
    o_digest = hex !digest;
    o_phases = phases;
    o_counts_ok = counts_ok;
  }

let clean o =
  o.o_counts_ok
  && o.o_score.Score.s_oracle_divergences = 0
  && o.o_score.Score.s_invariant_violations = 0
  && o.o_score.Score.s_recoveries = 0

let failures o =
  let phase_errs =
    List.concat_map
      (fun p ->
        let err tag = function
          | Ok () -> []
          | Error msg ->
              [ Printf.sprintf "phase %s: %s: %s" p.ph_label tag msg ]
        in
        err "invariants" p.ph_invariants @ err "oracle" p.ph_oracle)
      o.o_phases
  in
  let counts =
    if o.o_counts_ok then []
    else
      [
        Printf.sprintf
          "event counts diverge from pack metadata (ran %d packets / %d \
           updates, meta says %d / %d)"
          o.o_score.Score.s_packets o.o_score.Score.s_updates
          o.o_meta.Pack.m_packets o.o_meta.Pack.m_updates;
      ]
  in
  let recov =
    if o.o_score.Score.s_recoveries = 0 then []
    else
      [
        Printf.sprintf "%d watchdog recoveries during the replay"
          o.o_score.Score.s_recoveries;
      ]
  in
  counts @ phase_errs @ recov
