(** Adversarial scenario packs: seeded workload generators that attack
    the FIB cache where Zipf traffic flatters it.

    Each pack bundles a synthetic RIB, a cache configuration sized so
    the adversary can actually hurt, and a deterministic event stream —
    packets, BGP updates, and {!Cfca_traffic.Trace.Mark} phase
    boundaries. All generator state is created afresh inside each
    {!field:t.iter} call, so replaying a pack twice yields byte-identical
    streams: the property the readiness gates
    ({!Runner}, [verify scenarios]) are built on.

    The five shipped packs:
    - [thrash] — working set larger than the cache, cyclic LRU-killer
      access after a Zipf warm-up;
    - [flashcrowd] — sudden popularity inversion mid-run;
    - [bgpstorm] — withdraw/re-announce churn over half the table under
      concurrent traffic;
    - [routeleak] — burst of more-specific hijack prefixes from a rogue
      next-hop, then retraction;
    - [fdrc-flows] — SDN-style flow-driven rule demand with flow
      arrival and departure (FDRC, PAPERS.md). *)

open Cfca_prefix
open Cfca_rib
open Cfca_traffic
open Cfca_dataplane

type meta = {
  m_name : string;
  m_description : string;
  m_rib_size : int;
  m_packets : int;  (** exact [Packet] events per replay (measured) *)
  m_updates : int;  (** exact [Update] events per replay (measured) *)
  m_phases : string list;
      (** mark labels, in emission order; every pack ends on a mark *)
  m_blind_withdrawals : bool;
      (** whether the pack may withdraw a prefix that was never in the
          RIB nor announced by it (none of the shipped packs do) *)
}

type t = {
  meta : meta;
  rib : Rib.t;
  default_nh : Nexthop.t;
  config : Config.t;  (** pack-specific cache sizing *)
  pps : float;  (** simulated packet rate (drives threshold windows) *)
  iter : (time:float -> Trace.event -> unit) -> unit;
      (** replay the stream; stateless across calls *)
}

val default_nh : Nexthop.t
(** Next-hop id 33 — one past the 32 peer ids, as in [Experiments]. *)

val hijacker_nh : Nexthop.t
(** The rogue next-hop (id 62) announcing [routeleak]'s more-specifics. *)

val thrash : ?scale:float -> ?seed:int -> unit -> t
val flashcrowd : ?scale:float -> ?seed:int -> unit -> t
val bgpstorm : ?scale:float -> ?seed:int -> unit -> t
val routeleak : ?scale:float -> ?seed:int -> unit -> t
val fdrc_flows : ?scale:float -> ?seed:int -> unit -> t
(** [scale] (default 1.0) multiplies the RIB and packet volumes, with
    floors so even tiny scales stay meaningful; [seed] (default
    0xC0FFEE) derives every random choice. Same [scale] and [seed] —
    same pack, byte for byte. *)

val all : ?scale:float -> ?seed:int -> unit -> t list
(** The five packs in canonical order (the order of {!names}). *)

val names : string list
(** The canonical pack names, ["thrash"] … ["fdrc-flows"]. *)

val find : ?scale:float -> ?seed:int -> string -> t option
(** Construct one pack by name. *)
