open Cfca_prefix
open Cfca_bgp
open Cfca_rib
open Cfca_traffic
open Cfca_dataplane

type meta = {
  m_name : string;
  m_description : string;
  m_rib_size : int;
  m_packets : int;
  m_updates : int;
  m_phases : string list;
  m_blind_withdrawals : bool;
}

type t = {
  meta : meta;
  rib : Rib.t;
  default_nh : Nexthop.t;
  config : Config.t;
  pps : float;
  iter : (time:float -> Trace.event -> unit) -> unit;
}

(* All packs share the workload conventions of Experiments: 32 peers
   with next-hop ids 1..32, the default route on id 33, spatially
   local synthetic tables. *)
let peers = 32

let default_nh = Nexthop.of_int (peers + 1)

let pps = 1e6

let scaled scale ~min:lo base =
  max lo (int_of_float (float_of_int base *. scale))

let make_rib ~seed ~salt ~size =
  Rib_gen.generate { Rib_gen.size; peers; locality = 0.80; seed = (seed * 31) + salt }

(* Fisher–Yates on a copy; the caller's array is never mutated. *)
let shuffle rng a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

(* Simulated time is carried by the packet count alone: updates and
   marks ride at the current packet's timestamp, exactly like
   [Trace.iter] spreads updates. *)
type emitter = {
  mutable e_packets : int;
  e_f : time:float -> Trace.event -> unit;
}

let now e = float_of_int e.e_packets /. pps

let packet e dst =
  e.e_f ~time:(now e) (Trace.Packet dst);
  e.e_packets <- e.e_packets + 1

let update e u = e.e_f ~time:(now e) (Trace.Update u)

let mark e label = e.e_f ~time:(now e) (Trace.Mark label)

(* Event counts in the metadata are measured, not predicted: the pack's
   generator is replayed once at construction against a counting sink.
   Generators keep all their state inside [iter], so the counting
   replay and every later replay see identical streams — the property
   the qcheck suite and the gate runner both pin. *)
let count_events iter =
  let p = ref 0 and u = ref 0 in
  iter (fun ~time:_ ev ->
      match ev with
      | Trace.Packet _ -> incr p
      | Trace.Update _ -> incr u
      | Trace.Mark _ -> ());
  (!p, !u)

let build ~name ~description ~phases ~blind ~rib ~config iter =
  let packets, updates = count_events iter in
  {
    meta =
      {
        m_name = name;
        m_description = description;
        m_rib_size = Rib.size rib;
        m_packets = packets;
        m_updates = updates;
        m_phases = phases;
        m_blind_withdrawals = blind;
      };
    rib;
    default_nh;
    config;
    pps;
    iter;
  }

let zipf_draw zipf perm rng = perm.(Zipf.draw zipf rng)

(* -- thrash ---------------------------------------------------------- *)

let thrash ?(scale = 1.0) ?(seed = 0xC0FFEE) () =
  let salt = 0x7451 in
  let rib_size = scaled scale ~min:256 3_000 in
  let rib = make_rib ~seed ~salt ~size:rib_size in
  (* deliberately tiny caches: the adversary must be able to overflow
     them with a working set that still fits the RIB *)
  let l1 = max 16 (rib_size / 40) in
  let l2 = max (2 * l1) (rib_size / 16) in
  let config = Config.make ~l1_capacity:l1 ~l2_capacity:l2 () in
  let warmup = scaled scale ~min:2_000 30_000 in
  let thrash_packets = scaled scale ~min:6_000 90_000 in
  let burst = 8 in
  let iter f =
    let e = { e_packets = 0; e_f = f } in
    let rng = Random.State.make [| seed; salt; 1 |] in
    let perm = shuffle rng (Rib.prefixes rib) in
    let zipf = Zipf.create ~exponent:1.0 ~n:(Array.length perm) () in
    for _ = 1 to warmup do
      packet e (Prefix.random_member rng (zipf_draw zipf perm rng))
    done;
    mark e "warmup";
    (* LRU-killer: cycle a working set ~4x the L1 in a fixed order, so
       each prefix is revisited only after the whole set has marched
       through the cache. [burst] packets per visit give the trains
       enough weight to keep promoting — and keep evicting. *)
    let ws = min (Array.length perm) (4 * l1) in
    let visits = thrash_packets / burst in
    for v = 0 to visits - 1 do
      let p = perm.(v mod ws) in
      for _ = 1 to burst do
        packet e (Prefix.random_member rng p)
      done
    done;
    mark e "thrash"
  in
  build ~name:"thrash"
    ~description:
      "working set larger than the cache, cyclic LRU-killer access after a \
       Zipf warm-up"
    ~phases:[ "warmup"; "thrash" ] ~blind:false ~rib ~config iter

(* -- flashcrowd ------------------------------------------------------ *)

let flashcrowd ?(scale = 1.0) ?(seed = 0xC0FFEE) () =
  let salt = 0xF1A5 in
  let rib_size = scaled scale ~min:256 3_000 in
  let rib = make_rib ~seed ~salt ~size:rib_size in
  let l1 = max 16 (rib_size / 20) in
  let l2 = max (2 * l1) (rib_size / 8) in
  let config = Config.make ~l1_capacity:l1 ~l2_capacity:l2 () in
  let steady = scaled scale ~min:4_000 60_000 in
  let crowd = scaled scale ~min:4_000 60_000 in
  let iter f =
    let e = { e_packets = 0; e_f = f } in
    let rng = Random.State.make [| seed; salt; 1 |] in
    let perm = shuffle rng (Rib.prefixes rib) in
    let n = Array.length perm in
    let z_steady = Zipf.create ~exponent:1.0 ~n () in
    for _ = 1 to steady do
      packet e (Prefix.random_member rng (zipf_draw z_steady perm rng))
    done;
    mark e "steady";
    (* popularity inversion: the crowd rushes exactly the prefixes the
       caches learned to ignore, with a sharper skew *)
    let z_crowd = Zipf.create ~exponent:1.2 ~n () in
    for _ = 1 to crowd do
      packet e (Prefix.random_member rng perm.(n - 1 - Zipf.draw z_crowd rng))
    done;
    mark e "crowd"
  in
  build ~name:"flashcrowd"
    ~description:
      "sudden popularity inversion: the Zipf ranking flips mid-run with a \
       sharper exponent"
    ~phases:[ "steady"; "crowd" ] ~blind:false ~rib ~config iter

(* -- bgpstorm -------------------------------------------------------- *)

let bgpstorm ?(scale = 1.0) ?(seed = 0xC0FFEE) () =
  let salt = 0xB655 in
  let rib_size = scaled scale ~min:256 3_000 in
  let rib = make_rib ~seed ~salt ~size:rib_size in
  let l1 = max 16 (rib_size / 20) in
  let l2 = max (2 * l1) (rib_size / 8) in
  let config = Config.make ~l1_capacity:l1 ~l2_capacity:l2 () in
  let calm = scaled scale ~min:3_000 40_000 in
  let recovery = scaled scale ~min:3_000 40_000 in
  let churn_n = max 64 (rib_size / 2) in
  let iter f =
    let e = { e_packets = 0; e_f = f } in
    let rng = Random.State.make [| seed; salt; 1 |] in
    let perm = shuffle rng (Rib.prefixes rib) in
    let zipf = Zipf.create ~exponent:1.0 ~n:(Array.length perm) () in
    let traffic () = Prefix.random_member rng (zipf_draw zipf perm rng) in
    for _ = 1 to calm do
      packet e (traffic ())
    done;
    mark e "calm";
    (* withdraw/re-announce half the table in shuffled order, two
       packets after every update so the caches churn under load; the
       re-announcement rotates the next-hop so every touched route
       really changes *)
    for k = 0 to churn_n - 1 do
      let p = perm.(k) in
      update e (Bgp_update.withdraw p);
      packet e (traffic ());
      packet e (traffic ());
      let nh =
        match Rib.find rib p with Some nh -> nh | None -> assert false
      in
      let nh' = Nexthop.of_int (1 + (Nexthop.to_int nh mod peers)) in
      update e (Bgp_update.announce p nh');
      packet e (traffic ());
      packet e (traffic ())
    done;
    mark e "storm";
    for _ = 1 to recovery do
      packet e (traffic ())
    done;
    mark e "recovery"
  in
  build ~name:"bgpstorm"
    ~description:
      "full-table withdraw/re-announce churn (half the RIB, rotated \
       next-hops) under concurrent traffic"
    ~phases:[ "calm"; "storm"; "recovery" ] ~blind:false ~rib ~config iter

(* -- routeleak ------------------------------------------------------- *)

let hijacker_nh = Nexthop.of_int 62

let routeleak ?(scale = 1.0) ?(seed = 0xC0FFEE) () =
  let salt = 0x1EAC in
  let rib_size = scaled scale ~min:256 3_000 in
  let rib = make_rib ~seed ~salt ~size:rib_size in
  let l1 = max 16 (rib_size / 20) in
  let l2 = max (2 * l1) (rib_size / 8) in
  let config = Config.make ~l1_capacity:l1 ~l2_capacity:l2 () in
  let steady = scaled scale ~min:3_000 40_000 in
  let settle = scaled scale ~min:2_000 20_000 in
  let leak_target = max 32 (rib_size / 8) in
  let iter f =
    let e = { e_packets = 0; e_f = f } in
    let rng = Random.State.make [| seed; salt; 1 |] in
    let perm = shuffle rng (Rib.prefixes rib) in
    let n = Array.length perm in
    let zipf = Zipf.create ~exponent:1.0 ~n () in
    let traffic () = Prefix.random_member rng (zipf_draw zipf perm rng) in
    for _ = 1 to steady do
      packet e (traffic ())
    done;
    mark e "steady";
    (* hijack burst: more-specific children of the most popular
       prefixes, announced by a rogue next-hop. Children of distinct
       parents are distinct, so only exact collisions with existing
       RIB entries need skipping. *)
    let leaked = ref [] in
    let n_leaked = ref 0 in
    let r = ref 0 in
    while !n_leaked < leak_target && !r < n do
      let p = perm.(!r) in
      incr r;
      if Prefix.length p < 28 then begin
        let child = Prefix.child p (Random.State.bool rng) in
        if Rib.find rib child = None then begin
          leaked := child :: !leaked;
          incr n_leaked;
          update e (Bgp_update.announce child hijacker_nh);
          (* traffic pours into the leaked space while the burst is
             still in flight *)
          for _ = 1 to 3 do
            let target =
              List.nth !leaked (Random.State.int rng !n_leaked)
            in
            packet e (Prefix.random_member rng target)
          done;
          for _ = 1 to 3 do
            packet e (traffic ())
          done
        end
      end
    done;
    mark e "leak";
    List.iter
      (fun p ->
        update e (Bgp_update.withdraw p);
        packet e (traffic ());
        packet e (traffic ()))
      (List.rev !leaked);
    mark e "retract";
    for _ = 1 to settle do
      packet e (traffic ())
    done;
    mark e "settle"
  in
  build ~name:"routeleak"
    ~description:
      "burst of more-specific hijack prefixes from a rogue next-hop, then \
       full retraction"
    ~phases:[ "steady"; "leak"; "retract"; "settle" ] ~blind:false ~rib
    ~config iter

(* -- fdrc-flows ------------------------------------------------------ *)

let fdrc_flows ?(scale = 1.0) ?(seed = 0xC0FFEE) () =
  let salt = 0xFD8C in
  let rib_size = scaled scale ~min:256 3_000 in
  let rib = make_rib ~seed ~salt ~size:rib_size in
  let l1 = max 16 (rib_size / 30) in
  let l2 = max (2 * l1) (rib_size / 12) in
  let config = Config.make ~l1_capacity:l1 ~l2_capacity:l2 () in
  let ramp = scaled scale ~min:2_000 30_000 in
  let peak = scaled scale ~min:4_000 60_000 in
  let drain_budget = scaled scale ~min:2_000 30_000 in
  let concurrency = 4 * l1 in
  let mean_train = 24.0 in
  let iter f =
    let e = { e_packets = 0; e_f = f } in
    let rng = Random.State.make [| seed; salt; 1 |] in
    let perm = shuffle rng (Rib.prefixes rib) in
    let zipf = Zipf.create ~exponent:1.0 ~n:(Array.length perm) () in
    (* FDRC-style flow table: arrivals draw a Zipf destination rule and
       a geometric packet demand; a flow departs when its demand is
       spent. Swap-remove keeps slot selection O(1). *)
    let cap = (4 * concurrency) + 8 in
    let flow_p = Array.make cap Prefix.default in
    let flow_r = Array.make cap 0 in
    let active = ref 0 in
    let arrive () =
      if !active < cap then begin
        let p = zipf_draw zipf perm rng in
        let u = 1.0 -. Random.State.float rng 1.0 in
        let len = 1 + int_of_float (-.mean_train *. log u) in
        flow_p.(!active) <- p;
        flow_r.(!active) <- len;
        incr active
      end
    in
    let emit_from i =
      packet e (Prefix.random_member rng flow_p.(i));
      flow_r.(i) <- flow_r.(i) - 1;
      if flow_r.(i) = 0 then begin
        decr active;
        flow_p.(i) <- flow_p.(!active);
        flow_r.(i) <- flow_r.(!active)
      end
    in
    let step target =
      while !active < target do
        arrive ()
      done;
      if !active > 0 then emit_from (Random.State.int rng !active)
    in
    for i = 0 to ramp - 1 do
      step (1 + (concurrency - 1) * i / ramp)
    done;
    mark e "ramp";
    for _ = 1 to peak do
      step concurrency
    done;
    mark e "peak";
    (* no more arrivals: the rule demand drains away *)
    let budget = ref drain_budget in
    while !budget > 0 && !active > 0 do
      emit_from (Random.State.int rng !active);
      decr budget
    done;
    mark e "drain"
  in
  build ~name:"fdrc-flows"
    ~description:
      "flow-driven rule demand: geometric-length flows arrive to a target \
       concurrency, then drain"
    ~phases:[ "ramp"; "peak"; "drain" ] ~blind:false ~rib ~config iter

(* -- registry -------------------------------------------------------- *)

let all ?scale ?seed () =
  [
    thrash ?scale ?seed ();
    flashcrowd ?scale ?seed ();
    bgpstorm ?scale ?seed ();
    routeleak ?scale ?seed ();
    fdrc_flows ?scale ?seed ();
  ]

let names = [ "thrash"; "flashcrowd"; "bgpstorm"; "routeleak"; "fdrc-flows" ]

let find ?scale ?seed name =
  match name with
  | "thrash" -> Some (thrash ?scale ?seed ())
  | "flashcrowd" -> Some (flashcrowd ?scale ?seed ())
  | "bgpstorm" -> Some (bgpstorm ?scale ?seed ())
  | "routeleak" -> Some (routeleak ?scale ?seed ())
  | "fdrc-flows" -> Some (fdrc_flows ?scale ?seed ())
  | _ -> None
