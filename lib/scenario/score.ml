open Cfca_dataplane
module E = Cfca_sim.Engine

type t = {
  s_pack : string;
  s_packets : int;
  s_updates : int;
  s_hit_ratio : float;
  s_l2_hit_ratio : float;
  s_miss_p99 : float;
  s_miss_max : float;
  s_churn_ops : int;
  s_churn_per_sec : float;
  s_oracle_divergences : int;
  s_invariant_violations : int;
  s_recoveries : int;
  s_snapshot_patches : int;
  s_snapshot_full_rebuilds : int;
  s_update_wall_s : float;
}

let of_run ~pack ~pps ~oracle_divergences ~invariant_violations
    (r : E.run_result) (tel : E.telemetry) =
  let st = r.E.r_totals in
  let packets = st.Pipeline.packets in
  let ratio n d = if d = 0 then 1.0 else float_of_int n /. float_of_int d in
  (* rule churn in the FDRC sense: every cache install/eviction plus
     every control-plane FIB transition — pure-traffic packs churn the
     caches even though the FIB never moves *)
  let churn =
    Cfca_telemetry.Metrics.value
      (Cfca_telemetry.Metrics.counter tel.E.t_metrics "fib_ops")
    + st.Pipeline.l1_installs + st.Pipeline.l1_evictions
    + st.Pipeline.l2_installs + st.Pipeline.l2_evictions
  in
  (* churn rate over *simulated* time, so it is as deterministic as the
     replay itself; the wall-clock spent in update handling is reported
     separately and never gated *)
  let duration = float_of_int packets /. pps in
  {
    s_pack = pack;
    s_packets = packets;
    s_updates = r.E.r_updates;
    s_hit_ratio = ratio (packets - st.Pipeline.l1_misses) packets;
    s_l2_hit_ratio = ratio (packets - st.Pipeline.l2_misses) packets;
    s_miss_p99 = Cfca_telemetry.Timeseries.quantile tel.E.t_series "l1_misses" 0.99;
    s_miss_max = Cfca_telemetry.Timeseries.quantile tel.E.t_series "l1_misses" 1.0;
    s_churn_ops = churn;
    s_churn_per_sec =
      (if duration > 0.0 then float_of_int churn /. duration else 0.0);
    s_oracle_divergences = oracle_divergences;
    s_invariant_violations = invariant_violations;
    s_recoveries = r.E.r_recoveries;
    s_snapshot_patches = r.E.r_fastpath.Fib_snapshot.patches;
    s_snapshot_full_rebuilds = r.E.r_fastpath.Fib_snapshot.full_rebuilds;
    s_update_wall_s = r.E.r_update_seconds;
  }

(* the metric names the baseline file may reference *)
let gated_metrics =
  [
    "hit_ratio";
    "l2_hit_ratio";
    "miss_p99";
    "miss_max";
    "churn_ops";
    "churn_per_sec";
    "snapshot_patches";
    "snapshot_full_rebuilds";
  ]

let metric t = function
  | "hit_ratio" -> Some t.s_hit_ratio
  | "l2_hit_ratio" -> Some t.s_l2_hit_ratio
  | "miss_p99" -> Some t.s_miss_p99
  | "miss_max" -> Some t.s_miss_max
  | "churn_ops" -> Some (float_of_int t.s_churn_ops)
  | "churn_per_sec" -> Some t.s_churn_per_sec
  | "snapshot_patches" -> Some (float_of_int t.s_snapshot_patches)
  | "snapshot_full_rebuilds" -> Some (float_of_int t.s_snapshot_full_rebuilds)
  | _ -> None

let json_fields ?(wall = true) t =
  let open Cfca_telemetry.Export in
  let f name v = Printf.sprintf "%s: %s" (json_string name) v in
  List.concat
    [
      [
        f "pack" (json_string t.s_pack);
        f "packets" (string_of_int t.s_packets);
        f "updates" (string_of_int t.s_updates);
        f "hit_ratio" (json_float t.s_hit_ratio);
        f "l2_hit_ratio" (json_float t.s_l2_hit_ratio);
        f "miss_p99" (json_number t.s_miss_p99);
        f "miss_max" (json_number t.s_miss_max);
        f "churn_ops" (string_of_int t.s_churn_ops);
        f "churn_per_sec" (json_float t.s_churn_per_sec);
        f "oracle_divergences" (string_of_int t.s_oracle_divergences);
        f "invariant_violations" (string_of_int t.s_invariant_violations);
        f "recoveries" (string_of_int t.s_recoveries);
        f "snapshot_patches" (string_of_int t.s_snapshot_patches);
        f "snapshot_full_rebuilds" (string_of_int t.s_snapshot_full_rebuilds);
      ];
      (if wall then [ f "update_wall_s" (json_float t.s_update_wall_s) ]
       else []);
    ]

let to_json t = "{" ^ String.concat ", " (json_fields t) ^ "}"

(* the byte string two replays of the same pack must agree on: every
   deterministic field, nothing wall-clock *)
let deterministic_json t =
  "{" ^ String.concat ", " (json_fields ~wall:false t) ^ "}"
