(** The readiness-gate replay: run one pack through the CFCA engine
    with every machine-checkable oracle armed.

    One [run_pack] call replays the pack's event stream while

    - folding an FNV-1a digest over the canonical byte encoding of
      every event (replayability gate: two runs must produce the same
      digest {e and} the same {!Score.deterministic_json});
    - shadowing every BGP update into a {!Cfca_check.Oracle};
    - at every phase mark, running [Invariants.quick_check] over the
      live trie/pipeline and a forwarding-equivalence sweep against the
      oracle, exhaustive over the prefixes the phase touched;
    - sweeping the final forwarding function against the full oracle
      table once more after the run. *)

type phase_report = {
  ph_label : string;
  ph_invariants : (unit, string) result;
  ph_oracle : (unit, string) result;
}

type outcome = {
  o_meta : Pack.meta;
  o_score : Score.t;
  o_digest : string;  (** FNV-1a 64 of the event stream, 16 hex digits *)
  o_phases : phase_report list;
      (** one per pack phase, in order, plus a trailing ["final"] sweep *)
  o_counts_ok : bool;
      (** replayed event counts and phase labels matched the metadata *)
}

val run_pack :
  ?seed:int ->
  ?watchdog:Cfca_sim.Watchdog.config ->
  ?journal:Cfca_durability.Store.t ->
  ?chaos:(string -> Cfca_sim.Engine.access -> unit) ->
  Pack.t ->
  outcome
(** [seed] (default 0x5EED) seeds the engine pipeline, the watchdog and
    the probe sampling — independent of the pack's own workload seed.
    [watchdog] and [journal] pass through to
    {!Cfca_sim.Engine.run_events}. [chaos] fires at every phase mark
    {e after} that phase's audits, with the same live access the audits
    used — the hook for recovery tests that corrupt the running system
    mid-pack and let the watchdog repair it before the next audit. The
    event-stream digest is a pure function of the pack, so neither
    journaling nor a chaos-triggered recovery changes it. *)

val clean : outcome -> bool
(** No oracle divergence, no invariant violation, no watchdog recovery,
    counts matching metadata. *)

val failures : outcome -> string list
(** Human-readable description of everything that was not clean. *)
