(** Seeded fault-injection harness for the resilient decoders.

    Each seed deterministically builds three well-formed corpora (an
    MRT TABLE_DUMP_V2 RIB, an MRT BGP4MP update stream, a classic pcap
    trace), then damages each with every corruption class and asserts
    the decoder contract:

    - lenient decoding never raises and never fails fatally (no class
      here touches the file-level framing);
    - byte accounting holds: parsed + skipped + dropped bytes equal the
      bytes after the file header, for any damage;
    - record accounting reconciles with the injected damage (e.g. a
      spliced garbage record leaves every pristine record parsed and
      adds exactly one drop);
    - strict decoding returns a typed [Error], never an exception.

    Driven by [bin/verify inject] and the test-suite. *)

type corpus = Mrt_rib | Mrt_updates | Pcap_trace

val corpus_name : corpus -> string

val all_corpora : corpus list

val build : corpus -> int -> string
(** [build kind seed] is the pristine encoded corpus. *)

type corruption =
  | Flip_body  (** one bit flipped inside a record body *)
  | Truncate  (** the file cut at a uniformly random point *)
  | Lie_length  (** a record's length field claims ~16 MB *)
  | Garbage_record  (** a well-framed but undecodable record spliced in *)
  | Mid_eof  (** the file ends inside a record header *)

val corruption_name : corruption -> string

val all_corruptions : corruption list

type trial = {
  t_seed : int;
  t_corpus : string;
  t_corruption : string;
  t_parsed : int;  (** records the lenient decode still recovered *)
  t_dropped : int;  (** records it dropped (with a counted error) *)
}

val run_seed : int -> trial list
(** All corpora x all corruptions for one seed (15 trials), plus a
    pristine-decode check per corpus.
    @raise Failure naming seed/corpus/corruption on the first violated
    assertion. *)

val sweep : ?first_seed:int -> seeds:int -> unit -> (trial list, string) result
(** [run_seed] over [seeds] consecutive seeds; [Error] carries the
    first failure message. *)

(** {2 Journal/checkpoint store corruptions}

    The same harness over the durability layer: each seed builds a
    base route set (checkpoint 0), a mid-stream checkpoint and a
    write-ahead journal, damages them, and asserts
    {!Cfca_durability.Store.replay} recovers exactly the route set an
    independent evaluator predicts — never raising, with every journal
    byte accounted for. *)

type store_corruption =
  | Torn_tail  (** the journal ends mid-frame (a crash during a write) *)
  | Length_flip  (** a bit flips in a record's length field *)
  | Dup_record  (** a record frame is duplicated in place *)
  | Stale_skew
      (** the newest checkpoint is corrupt while the journal runs
          ahead: recovery must fall back and replay further *)

val store_corruption_name : store_corruption -> string

val all_store_corruptions : store_corruption list

val run_store_seed : int -> trial list
(** All store corruptions for one seed (trials tagged ["wal-store"]),
    plus a pristine checkpoint-plus-journal reconciliation check.
    @raise Failure naming seed/corruption on the first violated
    assertion. *)

val store_sweep :
  ?first_seed:int -> seeds:int -> unit -> (trial list, string) result
