type policy = Strict | Lenient

type t =
  | Truncated of { offset : int; wanted : int; available : int }
  | Bad_magic of { offset : int; found : string; expected : string }
  | Unsupported of { offset : int; what : string }
  | Corrupt_record of { offset : int; reason : string }
  | Bad_checksum of { offset : int }
  | Io_error of string

type severity = Recoverable | Fatal

let severity = function
  | Bad_magic _ | Io_error _ -> Fatal
  | Truncated _ | Unsupported _ | Corrupt_record _ | Bad_checksum _ ->
      Recoverable

exception Fault of t

let offset = function
  | Truncated { offset; _ }
  | Bad_magic { offset; _ }
  | Unsupported { offset; _ }
  | Corrupt_record { offset; _ }
  | Bad_checksum { offset } ->
      offset
  | Io_error _ -> -1

let to_string = function
  | Truncated { offset; wanted; available } ->
      Printf.sprintf "offset %d: truncated: wanted %d bytes, %d available"
        offset wanted available
  | Bad_magic { offset; found; expected } ->
      Printf.sprintf "offset %d: bad magic: found %s, expected %s" offset
        found expected
  | Unsupported { offset; what } ->
      Printf.sprintf "offset %d: unsupported: %s" offset what
  | Corrupt_record { offset; reason } ->
      Printf.sprintf "offset %d: corrupt record: %s" offset reason
  | Bad_checksum { offset } ->
      Printf.sprintf "offset %d: bad header checksum" offset
  | Io_error msg -> "i/o error: " ^ msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

type counters = {
  mutable truncated : int;
  mutable bad_magic : int;
  mutable unsupported : int;
  mutable corrupt : int;
  mutable checksum : int;
  mutable io : int;
}

let counters () =
  { truncated = 0; bad_magic = 0; unsupported = 0; corrupt = 0; checksum = 0; io = 0 }

let count c = function
  | Truncated _ -> c.truncated <- c.truncated + 1
  | Bad_magic _ -> c.bad_magic <- c.bad_magic + 1
  | Unsupported _ -> c.unsupported <- c.unsupported + 1
  | Corrupt_record _ -> c.corrupt <- c.corrupt + 1
  | Bad_checksum _ -> c.checksum <- c.checksum + 1
  | Io_error _ -> c.io <- c.io + 1

let total c =
  c.truncated + c.bad_magic + c.unsupported + c.corrupt + c.checksum + c.io

type report = {
  mutable parsed : int;
  mutable parsed_bytes : int;
  mutable skipped : int;
  mutable skipped_bytes : int;
  mutable dropped : int;
  mutable dropped_bytes : int;
  errors : counters;
  mutable samples : t list;
}

let max_samples = 4

let report () =
  {
    parsed = 0;
    parsed_bytes = 0;
    skipped = 0;
    skipped_bytes = 0;
    dropped = 0;
    dropped_bytes = 0;
    errors = counters ();
    samples = [];
  }

let note_parsed r ~bytes =
  r.parsed <- r.parsed + 1;
  r.parsed_bytes <- r.parsed_bytes + bytes

let note_skipped r ~bytes =
  r.skipped <- r.skipped + 1;
  r.skipped_bytes <- r.skipped_bytes + bytes

let note_drop r ~bytes e =
  r.dropped <- r.dropped + 1;
  r.dropped_bytes <- r.dropped_bytes + bytes;
  count r.errors e;
  if List.length r.samples < max_samples then r.samples <- r.samples @ [ e ]

let is_clean r = r.dropped = 0 && total r.errors = 0

let total_records r = r.parsed + r.skipped + r.dropped

let total_bytes r = r.parsed_bytes + r.skipped_bytes + r.dropped_bytes

let pp_report ppf r =
  Format.fprintf ppf "parsed %d  skipped %d  dropped %d" r.parsed r.skipped
    r.dropped;
  Format.fprintf ppf "  (bytes: parsed %d, skipped %d, dropped %d)"
    r.parsed_bytes r.skipped_bytes r.dropped_bytes;
  let c = r.errors in
  if total c > 0 then begin
    Format.fprintf ppf "@\nerrors:";
    List.iter
      (fun (name, n) -> if n > 0 then Format.fprintf ppf " %s=%d" name n)
      [
        ("truncated", c.truncated);
        ("bad-magic", c.bad_magic);
        ("unsupported", c.unsupported);
        ("corrupt", c.corrupt);
        ("checksum", c.checksum);
        ("io", c.io);
      ]
  end;
  List.iter (fun e -> Format.fprintf ppf "@\n  %s" (to_string e)) r.samples

let summary r =
  Printf.sprintf "parsed %d, skipped %d, dropped %d" r.parsed r.skipped
    r.dropped
