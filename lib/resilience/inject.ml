open Cfca_prefix
open Cfca_bgp
open Cfca_rib
open Cfca_resilience

(* ------------------------------------------------------------------ *)
(* Corpora: small well-formed inputs built deterministically per seed  *)
(* ------------------------------------------------------------------ *)

type corpus = Mrt_rib | Mrt_updates | Pcap_trace

let corpus_name = function
  | Mrt_rib -> "mrt-rib"
  | Mrt_updates -> "mrt-updates"
  | Pcap_trace -> "pcap"

let all_corpora = [ Mrt_rib; Mrt_updates; Pcap_trace ]

let build_rib seed =
  Mrt.encode_rib
    (Rib_gen.generate { Rib_gen.size = 60; peers = 4; locality = 0.8; seed })

let build_updates seed =
  let st = Random.State.make [| seed; 0x11 |] in
  Mrt.encode_updates
    (Array.init 40 (fun i ->
         let p = Prefix.random st ~min_len:8 ~max_len:24 () in
         if i mod 4 = 3 then Bgp_update.withdraw p
         else Bgp_update.announce p (1 + Random.State.int st 4)))

let build_pcap seed =
  let st = Random.State.make [| seed; 0x17 |] in
  Cfca_pcap.Pcap.encode
    (Seq.init 50 (fun i ->
         {
           Cfca_pcap.Pcap.ts = 0.001 *. float_of_int i;
           src = Ipv4.random st;
           dst = Ipv4.random st;
         }))

let build = function
  | Mrt_rib -> build_rib
  | Mrt_updates -> build_updates
  | Pcap_trace -> build_pcap

(* ------------------------------------------------------------------ *)
(* Record extents: where the length-delimited framing says records are *)
(* ------------------------------------------------------------------ *)

let u32be s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let u32le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let file_header = function
  | Mrt_rib | Mrt_updates -> 0
  | Pcap_trace -> Cfca_pcap.Pcap.global_header_bytes

let record_header = function
  | Mrt_rib | Mrt_updates -> 12
  | Pcap_trace -> Cfca_pcap.Pcap.packet_header_bytes

let body_length kind s off =
  match kind with
  | Mrt_rib | Mrt_updates -> u32be s (off + 8)
  | Pcap_trace -> u32le s (off + 8)

(* [(offset, total_size)] of every record, in order *)
let extents kind s =
  let len = String.length s in
  let hdr = record_header kind in
  let rec go off acc =
    if off + hdr > len then List.rev acc
    else
      let total = hdr + body_length kind s off in
      if off + total > len then List.rev acc
      else go (off + total) ((off, total) :: acc)
  in
  go (file_header kind) []

(* ------------------------------------------------------------------ *)
(* Corruptions                                                         *)
(* ------------------------------------------------------------------ *)

type corruption = Flip_body | Truncate | Lie_length | Garbage_record | Mid_eof

let corruption_name = function
  | Flip_body -> "flip-body"
  | Truncate -> "truncate"
  | Lie_length -> "lie-length"
  | Garbage_record -> "garbage-record"
  | Mid_eof -> "mid-eof"

let all_corruptions = [ Flip_body; Truncate; Lie_length; Garbage_record; Mid_eof ]

let set_u32be b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let set_u32le b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

(* A syntactically well-framed record whose body cannot decode. *)
let garbage kind =
  match kind with
  | Mrt_rib | Mrt_updates ->
      (* TABLE_DUMP_V2 / RIB_IPV4_UNICAST whose NLRI length byte is 255 *)
      let b = Bytes.make (12 + 16) '\xff' in
      set_u32be b 0 0;
      set_u32be b 4 ((13 lsl 16) lor 2);
      set_u32be b 8 16;
      Bytes.to_string b
  | Pcap_trace ->
      (* valid pcap + Ethernet framing, IP version nibble 15 *)
      let incl = 14 + 20 in
      let b = Bytes.make (16 + incl) '\x00' in
      set_u32le b 8 incl;
      set_u32le b 12 incl;
      (* ethertype 0x0800 at frame offset 12 *)
      Bytes.set b (16 + 12) '\x08';
      Bytes.set b (16 + 13) '\x00';
      Bytes.set b (16 + 14) '\xf5';
      Bytes.to_string b

(* What the lenient decode of the damaged input must reconcile to,
   relative to the pristine record count. *)
type expect = {
  e_total : int option;  (** parsed + skipped + dropped, exactly *)
  e_parsed : int option;
  e_min_parsed : int;
  e_max_dropped : int option;
}

let any =
  { e_total = None; e_parsed = None; e_min_parsed = 0; e_max_dropped = None }

let apply kind st s =
  let exts = extents kind s in
  let n = List.length exts in
  if n = 0 then invalid_arg "Inject.apply: empty corpus";
  let nth_ext i = List.nth exts i in
  let hdr = record_header kind in
  fun corruption ->
    match corruption with
    | Flip_body ->
        (* flip one bit inside a record body: framing intact, so every
           record stays delimited; at most the damaged one drops *)
        let with_body = List.filter (fun (_, total) -> total > hdr) exts in
        if with_body = [] then (s, any)
        else
          let off, total =
            List.nth with_body (Random.State.int st (List.length with_body))
          in
          let i = off + hdr + Random.State.int st (total - hdr) in
          let b = Bytes.of_string s in
          Bytes.set b i
            (Char.chr (Char.code s.[i] lxor (1 lsl Random.State.int st 8)));
          ( Bytes.to_string b,
            {
              e_total = Some n;
              e_parsed = None;
              e_min_parsed = 0;
              e_max_dropped = Some 1;
            } )
    | Truncate ->
        let cut =
          file_header kind
          + Random.State.int st (String.length s - file_header kind)
        in
        let before =
          List.length (List.filter (fun (o, t) -> o + t <= cut) exts)
        in
        let on_boundary =
          cut = file_header kind || List.exists (fun (o, t) -> o + t = cut) exts
        in
        ( String.sub s 0 cut,
          {
            e_total = Some (before + if on_boundary then 0 else 1);
            e_parsed = Some before;
            e_min_parsed = before;
            e_max_dropped = Some (if on_boundary then 0 else 1);
          } )
    | Mid_eof ->
        (* cut inside a record header: a short tail the framing layer
           must turn into a single clean drop *)
        let off, _ = nth_ext (Random.State.int st n) in
        let cut = off + 1 + Random.State.int st (hdr - 1) in
        let before =
          List.length (List.filter (fun (o, t) -> o + t <= cut) exts)
        in
        ( String.sub s 0 cut,
          {
            e_total = Some (before + 1);
            e_parsed = Some before;
            e_min_parsed = before;
            e_max_dropped = Some 1;
          } )
    | Lie_length ->
        (* make one record claim to be far longer than the input: the
           decoder must drop the tail as truncated, not read wild *)
        let idx = Random.State.int st n in
        let off, _ = nth_ext idx in
        let b = Bytes.of_string s in
        (match kind with
        | Mrt_rib | Mrt_updates -> set_u32be b (off + 8) 0xff_ffff
        | Pcap_trace -> set_u32le b (off + 8) 0xff_ffff);
        ( Bytes.to_string b,
          {
            e_total = Some (idx + 1);
            e_parsed = Some idx;
            e_min_parsed = idx;
            e_max_dropped = Some 1;
          } )
    | Garbage_record ->
        (* splice a well-framed undecodable record between two real ones *)
        let at =
          let i = Random.State.int st (n + 1) in
          if i = n then String.length s else fst (nth_ext i)
        in
        ( String.sub s 0 at ^ garbage kind
          ^ String.sub s at (String.length s - at),
          {
            e_total = Some (n + 1);
            e_parsed = Some n;
            e_min_parsed = n;
            e_max_dropped = Some 1;
          } )

(* ------------------------------------------------------------------ *)
(* Decoding + assertions                                               *)
(* ------------------------------------------------------------------ *)

let decode kind ~policy s =
  match kind with
  | Mrt_rib -> (
      match Mrt.read_rib_string ~policy s with
      | Ok (_, rep) -> Ok rep
      | Error e -> Error e)
  | Mrt_updates -> (
      match Mrt.read_update_string ~policy s with
      | Ok (_, rep) -> Ok rep
      | Error e -> Error e)
  | Pcap_trace -> (
      match
        Cfca_pcap.Pcap.fold_string ~policy s ~init:() ~f:(fun () _ -> ())
      with
      | Ok ((), rep) -> Ok rep
      | Error e -> Error e)

let failf fmt = Printf.ksprintf failwith fmt

type trial = {
  t_seed : int;
  t_corpus : string;
  t_corruption : string;
  t_parsed : int;
  t_dropped : int;
}

let check_trial ~seed kind corruption s' expect =
  let ctx fmt =
    Printf.ksprintf
      (fun msg ->
        failf "seed %d, %s/%s: %s" seed (corpus_name kind)
          (corruption_name corruption) msg)
      fmt
  in
  (* 1. lenient decode never raises, and — no corruption class here
     damages the file-level framing — always succeeds *)
  let rep =
    match
      try decode kind ~policy:Errors.Lenient s'
      with e -> ctx "lenient decode raised %s" (Printexc.to_string e)
    with
    | Ok rep -> rep
    | Error e -> ctx "lenient decode failed fatally: %s" (Errors.to_string e)
  in
  (* 2. every consumed byte is attributed *)
  let consumed = String.length s' - file_header kind in
  if Errors.total_bytes rep <> consumed then
    ctx "byte accounting: %d attributed <> %d consumed"
      (Errors.total_bytes rep) consumed;
  (* 3. record accounting reconciles with the damage class *)
  (match expect.e_total with
  | Some t when Errors.total_records rep <> t ->
      ctx "expected %d total records, saw %d (parsed %d skipped %d dropped %d)"
        t (Errors.total_records rep) rep.Errors.parsed rep.Errors.skipped
        rep.Errors.dropped
  | _ -> ());
  (match expect.e_parsed with
  | Some p when rep.Errors.parsed <> p ->
      ctx "expected exactly %d parsed, got %d" p rep.Errors.parsed
  | _ -> ());
  if rep.Errors.parsed < expect.e_min_parsed then
    ctx "expected at least %d parsed, got %d" expect.e_min_parsed
      rep.Errors.parsed;
  (match expect.e_max_dropped with
  | Some d when rep.Errors.dropped > d ->
      ctx "expected at most %d dropped, got %d" d rep.Errors.dropped
  | _ -> ());
  if rep.Errors.dropped > 0 && Errors.total rep.Errors.errors = 0 then
    ctx "%d drops but no error counted" rep.Errors.dropped;
  (* 4. strict decode must not raise either: Ok or a typed error *)
  (match
     try Ok (decode kind ~policy:Errors.Strict s')
     with e -> Error (Printexc.to_string e)
   with
  | Ok _ -> ()
  | Error exn -> ctx "strict decode raised %s" exn);
  {
    t_seed = seed;
    t_corpus = corpus_name kind;
    t_corruption = corruption_name corruption;
    t_parsed = rep.Errors.parsed;
    t_dropped = rep.Errors.dropped;
  }

let check_pristine ~seed kind s n =
  let ctx fmt =
    Printf.ksprintf
      (fun msg -> failf "seed %d, %s/pristine: %s" seed (corpus_name kind) msg)
      fmt
  in
  match decode kind ~policy:Errors.Lenient s with
  | Error e -> ctx "decode failed: %s" (Errors.to_string e)
  | Ok rep ->
      if not (Errors.is_clean rep) then
        ctx "pristine corpus not clean: %s" (Errors.summary rep);
      if rep.Errors.parsed <> n then
        ctx "pristine corpus: %d records framed, %d parsed" n rep.Errors.parsed;
      if Errors.total_bytes rep <> String.length s - file_header kind then
        ctx "pristine byte accounting off"

let run_seed seed =
  List.concat_map
    (fun kind ->
      let s = build kind seed in
      let n = List.length (extents kind s) in
      check_pristine ~seed kind s n;
      let st = Random.State.make [| seed; 0x29 |] in
      let damage = apply kind st s in
      List.map
        (fun c ->
          let s', expect = damage c in
          check_trial ~seed kind c s' expect)
        all_corruptions)
    all_corpora

let sweep ?(first_seed = 0) ~seeds () =
  try
    let trials = ref [] in
    for seed = first_seed to first_seed + seeds - 1 do
      trials := List.rev_append (run_seed seed) !trials
    done;
    Ok (List.rev !trials)
  with Failure msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Journal/checkpoint store corruptions                                *)
(* ------------------------------------------------------------------ *)

module J = Cfca_durability.Journal
module Ck = Cfca_durability.Checkpoint
module Store = Cfca_durability.Store

type store_corruption = Torn_tail | Length_flip | Dup_record | Stale_skew

let store_corruption_name = function
  | Torn_tail -> "torn-tail"
  | Length_flip -> "length-flip"
  | Dup_record -> "dup-record"
  | Stale_skew -> "stale-skew"

let all_store_corruptions = [ Torn_tail; Length_flip; Dup_record; Stale_skew ]

(* Independent evaluator of what recovery must produce: the base route
   set with records in (from_seq, upto_seq] applied, in prefix order.
   Deliberately NOT Store.replay — the expectation must not come from
   the code under test. *)
let apply_updates base records ~from_seq ~upto_seq =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (p, nh) -> Hashtbl.replace tbl p nh) base;
  List.iter
    (fun { J.seq; update } ->
      if seq > from_seq && seq <= upto_seq then begin
        let p = Bgp_update.prefix update in
        match update.Bgp_update.action with
        | Bgp_update.Announce nh -> Hashtbl.replace tbl p nh
        | Bgp_update.Withdraw -> Hashtbl.remove tbl p
      end)
    records;
  Hashtbl.fold (fun p nh acc -> (p, nh) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Prefix.compare a b)

let routes_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (p1, n1) (p2, n2) -> Prefix.equal p1 p2 && n1 = n2)
       a b

(* Per seed: a base route set (checkpoint 0), a mid-stream checkpoint,
   and a journal of [n_store_updates] records. *)
let n_store_updates = 20

let build_store_state seed =
  let st = Random.State.make [| seed; 0x3d |] in
  let base_tbl = Hashtbl.create 64 in
  while Hashtbl.length base_tbl < 24 do
    let p = Prefix.random st ~min_len:8 ~max_len:24 () in
    if not (Hashtbl.mem base_tbl p) then
      Hashtbl.replace base_tbl p
        (Nexthop.of_int (1 + Random.State.int st 4))
  done;
  let base =
    Hashtbl.fold (fun p nh acc -> (p, nh) :: acc) base_tbl []
    |> List.sort (fun (a, _) (b, _) -> Prefix.compare a b)
  in
  let base_arr = Array.of_list base in
  let records =
    List.init n_store_updates (fun i ->
        let p =
          if Random.State.bool st then
            fst base_arr.(Random.State.int st (Array.length base_arr))
          else Prefix.random st ~min_len:8 ~max_len:24 ()
        in
        let update =
          if Random.State.int st 4 = 0 then Bgp_update.withdraw p
          else Bgp_update.announce p (Nexthop.of_int (1 + Random.State.int st 4))
        in
        { J.seq = i + 1; update })
  in
  let mid = n_store_updates / 2 in
  let ck image_seq =
    Ck.encode
      {
        Ck.ck_seq = image_seq;
        ck_routes = apply_updates base records ~from_seq:0 ~upto_seq:image_seq;
        ck_summary = Ck.empty_summary;
      }
  in
  (base, records, mid, ck 0, ck mid, J.encode records)

(* [(offset, total)] of every journal record frame, from the framing *)
let journal_extents journal =
  let rec go off acc =
    if off >= String.length journal then List.rev acc
    else
      let body =
        (Char.code journal.[off] lsl 8) lor Char.code journal.[off + 1]
      in
      let total = 6 + body in
      go (off + total) ((off, total) :: acc)
  in
  go (String.length J.magic) []

let seq_range ~from_seq ~upto_seq =
  List.init (max 0 (upto_seq - from_seq)) (fun i -> from_seq + 1 + i)

let check_store_trial ~seed corruption ~checkpoints ~journal ~ck_seq ~skipped
    ~applied ~routes ~dropped ~bytes =
  let ctx fmt =
    Printf.ksprintf
      (fun msg ->
        failf "seed %d, wal-store/%s: %s" seed
          (store_corruption_name corruption)
          msg)
      fmt
  in
  match Store.replay ~checkpoints ~journal with
  | Error e -> ctx "recovery failed fatally: %s" (Errors.to_string e)
  | exception e -> ctx "recovery raised %s" (Printexc.to_string e)
  | Ok rc ->
      if rc.Store.rc_checkpoint_seq <> ck_seq then
        ctx "recovered from checkpoint %d, expected %d"
          rc.Store.rc_checkpoint_seq ck_seq;
      if rc.Store.rc_skipped_checkpoints <> skipped then
        ctx "skipped %d checkpoints, expected %d"
          rc.Store.rc_skipped_checkpoints skipped;
      if rc.Store.rc_applied <> applied then
        ctx "replayed seqs [%s], expected [%s]"
          (String.concat ";" (List.map string_of_int rc.Store.rc_applied))
          (String.concat ";" (List.map string_of_int applied));
      if not (routes_equal rc.Store.rc_routes routes) then
        ctx "recovered %d routes differ from the %d expected"
          (List.length rc.Store.rc_routes)
          (List.length routes);
      let rep = rc.Store.rc_report in
      if rep.Errors.dropped <> dropped then
        ctx "expected %d dropped records, saw %d" dropped rep.Errors.dropped;
      if rep.Errors.dropped > 0 && Errors.total rep.Errors.errors = 0 then
        ctx "%d drops but no error counted" rep.Errors.dropped;
      if Errors.total_bytes rep <> bytes then
        ctx "byte accounting: %d attributed <> %d after the magic"
          (Errors.total_bytes rep) bytes;
      {
        t_seed = seed;
        t_corpus = "wal-store";
        t_corruption = store_corruption_name corruption;
        t_parsed = rep.Errors.parsed;
        t_dropped = rep.Errors.dropped;
      }

let run_store_seed seed =
  let base, records, mid, ck0, ck_mid, journal = build_store_state seed in
  let exts = Array.of_list (journal_extents journal) in
  let n = Array.length exts in
  if n <> n_store_updates then
    failf "seed %d, wal-store: %d records framed, expected %d" seed n
      n_store_updates;
  let st = Random.State.make [| seed; 0x43 |] in
  let final = apply_updates base records ~from_seq:0 ~upto_seq:n in
  (* pristine: mid checkpoint + full journal reconcile exactly *)
  ignore
    (check_store_trial ~seed Dup_record ~checkpoints:[ ck_mid; ck0 ] ~journal
       ~ck_seq:mid ~skipped:0
       ~applied:(seq_range ~from_seq:mid ~upto_seq:n)
       ~routes:final ~dropped:0
       ~bytes:(String.length journal - String.length J.magic));
  let bytes_after_magic j = String.length j - String.length J.magic in
  List.map
    (fun corruption ->
      match corruption with
      | Torn_tail ->
          (* cut strictly inside record j's frame: everything before it
             parses, the tail is one clean drop. Durable state is the
             checkpoint plus the replay, so a cut before the
             checkpoint's seq loses nothing. *)
          let j = Random.State.int st n in
          let off, total = exts.(j) in
          let cut = off + 1 + Random.State.int st (total - 1) in
          let journal' = String.sub journal 0 cut in
          check_store_trial ~seed corruption ~checkpoints:[ ck_mid; ck0 ]
            ~journal:journal' ~ck_seq:mid ~skipped:0
            ~applied:(seq_range ~from_seq:mid ~upto_seq:j)
            ~routes:
              (apply_updates base records ~from_seq:0 ~upto_seq:(max j mid))
            ~dropped:1
            ~bytes:(bytes_after_magic journal')
      | Length_flip ->
          (* the length field's high bit flips: the frame claims a body
             far beyond [max_body], so the rest drops as corrupt tail *)
          let j = Random.State.int st n in
          let off, _ = exts.(j) in
          let b = Bytes.of_string journal in
          Bytes.set b off (Char.chr (Char.code journal.[off] lxor 0x80));
          check_store_trial ~seed corruption ~checkpoints:[ ck_mid; ck0 ]
            ~journal:(Bytes.to_string b) ~ck_seq:mid ~skipped:0
            ~applied:(seq_range ~from_seq:mid ~upto_seq:j)
            ~routes:
              (apply_updates base records ~from_seq:0 ~upto_seq:(max j mid))
            ~dropped:1
            ~bytes:(bytes_after_magic journal)
      | Dup_record ->
          (* a record's frame appears twice: both parse, the monotonic
             sequence filter drops the echo from the replay *)
          let j = Random.State.int st n in
          let off, total = exts.(j) in
          let journal' =
            String.sub journal 0 (off + total)
            ^ String.sub journal off total
            ^ String.sub journal (off + total)
                (String.length journal - off - total)
          in
          check_store_trial ~seed corruption ~checkpoints:[ ck_mid; ck0 ]
            ~journal:journal' ~ck_seq:mid ~skipped:0
            ~applied:(seq_range ~from_seq:mid ~upto_seq:n)
            ~routes:final ~dropped:0
            ~bytes:(bytes_after_magic journal')
      | Stale_skew ->
          (* the newest checkpoint is damaged while the journal runs
             ahead: recovery falls back to checkpoint 0 and replays the
             whole journal *)
          let b = Bytes.of_string ck_mid in
          let i = String.length ck_mid - 1 - Random.State.int st 4 in
          Bytes.set b i (Char.chr (Char.code ck_mid.[i] lxor 0x10));
          check_store_trial ~seed corruption
            ~checkpoints:[ Bytes.to_string b; ck0 ]
            ~journal ~ck_seq:0 ~skipped:1
            ~applied:(seq_range ~from_seq:0 ~upto_seq:n)
            ~routes:final ~dropped:0
            ~bytes:(bytes_after_magic journal))
    all_store_corruptions

let store_sweep ?(first_seed = 0) ~seeds () =
  try
    let trials = ref [] in
    for seed = first_seed to first_seed + seeds - 1 do
      trials := List.rev_append (run_store_seed seed) !trials
    done;
    Ok (List.rev !trials)
  with Failure msg -> Error msg
