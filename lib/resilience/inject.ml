open Cfca_prefix
open Cfca_bgp
open Cfca_rib
open Cfca_resilience

(* ------------------------------------------------------------------ *)
(* Corpora: small well-formed inputs built deterministically per seed  *)
(* ------------------------------------------------------------------ *)

type corpus = Mrt_rib | Mrt_updates | Pcap_trace

let corpus_name = function
  | Mrt_rib -> "mrt-rib"
  | Mrt_updates -> "mrt-updates"
  | Pcap_trace -> "pcap"

let all_corpora = [ Mrt_rib; Mrt_updates; Pcap_trace ]

let build_rib seed =
  Mrt.encode_rib
    (Rib_gen.generate { Rib_gen.size = 60; peers = 4; locality = 0.8; seed })

let build_updates seed =
  let st = Random.State.make [| seed; 0x11 |] in
  Mrt.encode_updates
    (Array.init 40 (fun i ->
         let p = Prefix.random st ~min_len:8 ~max_len:24 () in
         if i mod 4 = 3 then Bgp_update.withdraw p
         else Bgp_update.announce p (1 + Random.State.int st 4)))

let build_pcap seed =
  let st = Random.State.make [| seed; 0x17 |] in
  Cfca_pcap.Pcap.encode
    (Seq.init 50 (fun i ->
         {
           Cfca_pcap.Pcap.ts = 0.001 *. float_of_int i;
           src = Ipv4.random st;
           dst = Ipv4.random st;
         }))

let build = function
  | Mrt_rib -> build_rib
  | Mrt_updates -> build_updates
  | Pcap_trace -> build_pcap

(* ------------------------------------------------------------------ *)
(* Record extents: where the length-delimited framing says records are *)
(* ------------------------------------------------------------------ *)

let u32be s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let u32le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let file_header = function
  | Mrt_rib | Mrt_updates -> 0
  | Pcap_trace -> Cfca_pcap.Pcap.global_header_bytes

let record_header = function
  | Mrt_rib | Mrt_updates -> 12
  | Pcap_trace -> Cfca_pcap.Pcap.packet_header_bytes

let body_length kind s off =
  match kind with
  | Mrt_rib | Mrt_updates -> u32be s (off + 8)
  | Pcap_trace -> u32le s (off + 8)

(* [(offset, total_size)] of every record, in order *)
let extents kind s =
  let len = String.length s in
  let hdr = record_header kind in
  let rec go off acc =
    if off + hdr > len then List.rev acc
    else
      let total = hdr + body_length kind s off in
      if off + total > len then List.rev acc
      else go (off + total) ((off, total) :: acc)
  in
  go (file_header kind) []

(* ------------------------------------------------------------------ *)
(* Corruptions                                                         *)
(* ------------------------------------------------------------------ *)

type corruption = Flip_body | Truncate | Lie_length | Garbage_record | Mid_eof

let corruption_name = function
  | Flip_body -> "flip-body"
  | Truncate -> "truncate"
  | Lie_length -> "lie-length"
  | Garbage_record -> "garbage-record"
  | Mid_eof -> "mid-eof"

let all_corruptions = [ Flip_body; Truncate; Lie_length; Garbage_record; Mid_eof ]

let set_u32be b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let set_u32le b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

(* A syntactically well-framed record whose body cannot decode. *)
let garbage kind =
  match kind with
  | Mrt_rib | Mrt_updates ->
      (* TABLE_DUMP_V2 / RIB_IPV4_UNICAST whose NLRI length byte is 255 *)
      let b = Bytes.make (12 + 16) '\xff' in
      set_u32be b 0 0;
      set_u32be b 4 ((13 lsl 16) lor 2);
      set_u32be b 8 16;
      Bytes.to_string b
  | Pcap_trace ->
      (* valid pcap + Ethernet framing, IP version nibble 15 *)
      let incl = 14 + 20 in
      let b = Bytes.make (16 + incl) '\x00' in
      set_u32le b 8 incl;
      set_u32le b 12 incl;
      (* ethertype 0x0800 at frame offset 12 *)
      Bytes.set b (16 + 12) '\x08';
      Bytes.set b (16 + 13) '\x00';
      Bytes.set b (16 + 14) '\xf5';
      Bytes.to_string b

(* What the lenient decode of the damaged input must reconcile to,
   relative to the pristine record count. *)
type expect = {
  e_total : int option;  (** parsed + skipped + dropped, exactly *)
  e_parsed : int option;
  e_min_parsed : int;
  e_max_dropped : int option;
}

let any =
  { e_total = None; e_parsed = None; e_min_parsed = 0; e_max_dropped = None }

let apply kind st s =
  let exts = extents kind s in
  let n = List.length exts in
  if n = 0 then invalid_arg "Inject.apply: empty corpus";
  let nth_ext i = List.nth exts i in
  let hdr = record_header kind in
  fun corruption ->
    match corruption with
    | Flip_body ->
        (* flip one bit inside a record body: framing intact, so every
           record stays delimited; at most the damaged one drops *)
        let with_body = List.filter (fun (_, total) -> total > hdr) exts in
        if with_body = [] then (s, any)
        else
          let off, total =
            List.nth with_body (Random.State.int st (List.length with_body))
          in
          let i = off + hdr + Random.State.int st (total - hdr) in
          let b = Bytes.of_string s in
          Bytes.set b i
            (Char.chr (Char.code s.[i] lxor (1 lsl Random.State.int st 8)));
          ( Bytes.to_string b,
            {
              e_total = Some n;
              e_parsed = None;
              e_min_parsed = 0;
              e_max_dropped = Some 1;
            } )
    | Truncate ->
        let cut =
          file_header kind
          + Random.State.int st (String.length s - file_header kind)
        in
        let before =
          List.length (List.filter (fun (o, t) -> o + t <= cut) exts)
        in
        let on_boundary =
          cut = file_header kind || List.exists (fun (o, t) -> o + t = cut) exts
        in
        ( String.sub s 0 cut,
          {
            e_total = Some (before + if on_boundary then 0 else 1);
            e_parsed = Some before;
            e_min_parsed = before;
            e_max_dropped = Some (if on_boundary then 0 else 1);
          } )
    | Mid_eof ->
        (* cut inside a record header: a short tail the framing layer
           must turn into a single clean drop *)
        let off, _ = nth_ext (Random.State.int st n) in
        let cut = off + 1 + Random.State.int st (hdr - 1) in
        let before =
          List.length (List.filter (fun (o, t) -> o + t <= cut) exts)
        in
        ( String.sub s 0 cut,
          {
            e_total = Some (before + 1);
            e_parsed = Some before;
            e_min_parsed = before;
            e_max_dropped = Some 1;
          } )
    | Lie_length ->
        (* make one record claim to be far longer than the input: the
           decoder must drop the tail as truncated, not read wild *)
        let idx = Random.State.int st n in
        let off, _ = nth_ext idx in
        let b = Bytes.of_string s in
        (match kind with
        | Mrt_rib | Mrt_updates -> set_u32be b (off + 8) 0xff_ffff
        | Pcap_trace -> set_u32le b (off + 8) 0xff_ffff);
        ( Bytes.to_string b,
          {
            e_total = Some (idx + 1);
            e_parsed = Some idx;
            e_min_parsed = idx;
            e_max_dropped = Some 1;
          } )
    | Garbage_record ->
        (* splice a well-framed undecodable record between two real ones *)
        let at =
          let i = Random.State.int st (n + 1) in
          if i = n then String.length s else fst (nth_ext i)
        in
        ( String.sub s 0 at ^ garbage kind
          ^ String.sub s at (String.length s - at),
          {
            e_total = Some (n + 1);
            e_parsed = Some n;
            e_min_parsed = n;
            e_max_dropped = Some 1;
          } )

(* ------------------------------------------------------------------ *)
(* Decoding + assertions                                               *)
(* ------------------------------------------------------------------ *)

let decode kind ~policy s =
  match kind with
  | Mrt_rib -> (
      match Mrt.read_rib_string ~policy s with
      | Ok (_, rep) -> Ok rep
      | Error e -> Error e)
  | Mrt_updates -> (
      match Mrt.read_update_string ~policy s with
      | Ok (_, rep) -> Ok rep
      | Error e -> Error e)
  | Pcap_trace -> (
      match
        Cfca_pcap.Pcap.fold_string ~policy s ~init:() ~f:(fun () _ -> ())
      with
      | Ok ((), rep) -> Ok rep
      | Error e -> Error e)

let failf fmt = Printf.ksprintf failwith fmt

type trial = {
  t_seed : int;
  t_corpus : string;
  t_corruption : string;
  t_parsed : int;
  t_dropped : int;
}

let check_trial ~seed kind corruption s' expect =
  let ctx fmt =
    Printf.ksprintf
      (fun msg ->
        failf "seed %d, %s/%s: %s" seed (corpus_name kind)
          (corruption_name corruption) msg)
      fmt
  in
  (* 1. lenient decode never raises, and — no corruption class here
     damages the file-level framing — always succeeds *)
  let rep =
    match
      try decode kind ~policy:Errors.Lenient s'
      with e -> ctx "lenient decode raised %s" (Printexc.to_string e)
    with
    | Ok rep -> rep
    | Error e -> ctx "lenient decode failed fatally: %s" (Errors.to_string e)
  in
  (* 2. every consumed byte is attributed *)
  let consumed = String.length s' - file_header kind in
  if Errors.total_bytes rep <> consumed then
    ctx "byte accounting: %d attributed <> %d consumed"
      (Errors.total_bytes rep) consumed;
  (* 3. record accounting reconciles with the damage class *)
  (match expect.e_total with
  | Some t when Errors.total_records rep <> t ->
      ctx "expected %d total records, saw %d (parsed %d skipped %d dropped %d)"
        t (Errors.total_records rep) rep.Errors.parsed rep.Errors.skipped
        rep.Errors.dropped
  | _ -> ());
  (match expect.e_parsed with
  | Some p when rep.Errors.parsed <> p ->
      ctx "expected exactly %d parsed, got %d" p rep.Errors.parsed
  | _ -> ());
  if rep.Errors.parsed < expect.e_min_parsed then
    ctx "expected at least %d parsed, got %d" expect.e_min_parsed
      rep.Errors.parsed;
  (match expect.e_max_dropped with
  | Some d when rep.Errors.dropped > d ->
      ctx "expected at most %d dropped, got %d" d rep.Errors.dropped
  | _ -> ());
  if rep.Errors.dropped > 0 && Errors.total rep.Errors.errors = 0 then
    ctx "%d drops but no error counted" rep.Errors.dropped;
  (* 4. strict decode must not raise either: Ok or a typed error *)
  (match
     try Ok (decode kind ~policy:Errors.Strict s')
     with e -> Error (Printexc.to_string e)
   with
  | Ok _ -> ()
  | Error exn -> ctx "strict decode raised %s" exn);
  {
    t_seed = seed;
    t_corpus = corpus_name kind;
    t_corruption = corruption_name corruption;
    t_parsed = rep.Errors.parsed;
    t_dropped = rep.Errors.dropped;
  }

let check_pristine ~seed kind s n =
  let ctx fmt =
    Printf.ksprintf
      (fun msg -> failf "seed %d, %s/pristine: %s" seed (corpus_name kind) msg)
      fmt
  in
  match decode kind ~policy:Errors.Lenient s with
  | Error e -> ctx "decode failed: %s" (Errors.to_string e)
  | Ok rep ->
      if not (Errors.is_clean rep) then
        ctx "pristine corpus not clean: %s" (Errors.summary rep);
      if rep.Errors.parsed <> n then
        ctx "pristine corpus: %d records framed, %d parsed" n rep.Errors.parsed;
      if Errors.total_bytes rep <> String.length s - file_header kind then
        ctx "pristine byte accounting off"

let run_seed seed =
  List.concat_map
    (fun kind ->
      let s = build kind seed in
      let n = List.length (extents kind s) in
      check_pristine ~seed kind s n;
      let st = Random.State.make [| seed; 0x29 |] in
      let damage = apply kind st s in
      List.map
        (fun c ->
          let s', expect = damage c in
          check_trial ~seed kind c s' expect)
        all_corruptions)
    all_corpora

let sweep ?(first_seed = 0) ~seeds () =
  try
    let trials = ref [] in
    for seed = first_seed to first_seed + seeds - 1 do
      trials := List.rev_append (run_seed seed) !trials
    done;
    Ok (List.rev !trials)
  with Failure msg -> Error msg
