(** Structured decode-error taxonomy shared by every ingestion codec
    (MRT, pcap, text RIBs) plus the per-stream damage report the
    lenient decoders accumulate.

    MRT and pcap are length-delimited formats: a malformed record can
    be skipped and the stream resynchronised at the next record
    boundary. Each decoder therefore takes a {!policy}: [Strict] turns
    the first recoverable fault into a typed [Error] (never an
    exception at the file level), [Lenient] drops the damaged record,
    counts it in a {!report} and keeps going. Faults that destroy the
    framing itself (a bad file magic, an I/O error) are {!Fatal} and
    end the stream under either policy. *)

type policy = Strict | Lenient

type t =
  | Truncated of { offset : int; wanted : int; available : int }
      (** The input ends inside a header or a declared record body. *)
  | Bad_magic of { offset : int; found : string; expected : string }
      (** File-level framing is unrecognisable; no resync possible. *)
  | Unsupported of { offset : int; what : string }
      (** Well-formed but outside the implemented subset (IPv6 peers,
          non-IPv4 AFIs, exotic link types...). *)
  | Corrupt_record of { offset : int; reason : string }
      (** A record whose body contradicts its own framing or encoding
          rules (bad BGP marker, NLRI length > 32, IP version 15...). *)
  | Bad_checksum of { offset : int }
      (** An IPv4 header whose Internet checksum does not verify. *)
  | Io_error of string

type severity =
  | Recoverable  (** skip the record, resync at the next boundary *)
  | Fatal  (** the stream cannot continue *)

val severity : t -> severity

exception Fault of t
(** Raised by record-body parsers; caught at the record-framing layer
    and converted into a skip (lenient) or a typed error (strict).
    Never escapes the file-level decoding entry points. *)

val offset : t -> int
(** Byte offset of the fault ([-1] for I/O errors). For the text RIB
    loader the "offset" is a 1-based line number. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {2 Per-category counters} *)

type counters = {
  mutable truncated : int;
  mutable bad_magic : int;
  mutable unsupported : int;
  mutable corrupt : int;
  mutable checksum : int;
  mutable io : int;
}

val counters : unit -> counters

val count : counters -> t -> unit

val total : counters -> int

(** {2 Damage report}

    One per decoded stream. Every byte a decoder consumes is
    attributed to exactly one of [parsed] (records decoded), [skipped]
    (well-formed records outside the caller's interest, e.g. non-IPv4
    Ethernet frames) or [dropped] (damaged records), so
    [parsed_bytes + skipped_bytes + dropped_bytes] always equals the
    bytes consumed after the file header. *)

type report = {
  mutable parsed : int;
  mutable parsed_bytes : int;
  mutable skipped : int;
  mutable skipped_bytes : int;
  mutable dropped : int;
  mutable dropped_bytes : int;
  errors : counters;
  mutable samples : t list;  (** first {!max_samples} faults, in order *)
}

val max_samples : int

val report : unit -> report

val note_parsed : report -> bytes:int -> unit

val note_skipped : report -> bytes:int -> unit

val note_drop : report -> bytes:int -> t -> unit

val is_clean : report -> bool
(** No drops and no recorded errors. *)

val total_records : report -> int
(** [parsed + skipped + dropped]. *)

val total_bytes : report -> int

val pp_report : Format.formatter -> report -> unit
(** Deterministic multi-line rendering (counter block + first fault
    samples) — pinned by the test-suite, printed by [bin/sim]. *)

val summary : report -> string
(** One-line [parsed/skipped/dropped] summary. *)
