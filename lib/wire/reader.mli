(** Cursor-based big-endian binary reader used by the MRT and pcap
    codecs. All reads raise {!Truncated} past the end of input, so codec
    code can parse straight-line and report clean errors. *)

exception Truncated
(** Raised when a read runs past the end of the buffer. *)

type t

val of_string : string -> t

val of_bytes : bytes -> t

val pos : t -> int

val length : t -> int

val remaining : t -> int

val at_end : t -> bool

val peek_u8 : t -> int
(** Read one byte without advancing. *)

val u8 : t -> int

val u16 : t -> int

val u32 : t -> int

val u16le : t -> int

val u32le : t -> int

val take : t -> int -> string
(** Read [n] raw bytes. *)

val skip : t -> int -> unit

val sub : t -> int -> t
(** [sub t n] carves out a child reader over the next [n] bytes and
    advances the parent past them — for length-delimited records.
    @raise Truncated if fewer than [n] bytes remain or [n] is
    negative (a negative count never moves the cursor backwards). *)

val sub_reader : t -> int -> t
(** Like {!sub} but clamped: the child covers [min n (remaining t)]
    bytes (0 for a negative [n]) and never raises. A record whose
    length field lies past the end of input yields a short child
    instead of reading into the next record. *)
