(** Crash-safe file writing: tmp-file + rename.

    Every artifact this project persists (telemetry exports, scenario
    scores, baselines, durability checkpoints) goes through {!write}, so
    an interrupt mid-write can never leave a half-written file under the
    final name — readers see either the old contents or the new ones,
    never a torn mixture. *)

val mkdir_p : string -> unit
(** Create a directory and any missing parents ([0o755]); existing
    directories are fine. *)

val write : string -> string -> unit
(** [write path contents] writes [contents] to [path ^ ".tmp"] (same
    directory, so the rename cannot cross filesystems), closes it, and
    renames it over [path].

    The rename is atomic at the VFS layer; durability across power loss
    would additionally need an [fsync] on the file and its directory
    before the rename — OCaml's stdlib only exposes [flush]/[close],
    which is the fsync point noted in the implementation. For the
    crash classes this repo simulates (process kills, torn buffered
    writes) close-then-rename is exact.

    @raise Sys_error on I/O failure; the temporary file is removed on a
    failed write. *)

val write_subst : string -> (out_channel -> unit) -> unit
(** Like {!write} but the caller streams into the channel — for
    artifacts too large to build as one string. *)
