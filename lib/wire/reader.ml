exception Truncated

type t = { buf : string; limit : int; mutable cur : int }

let of_string s = { buf = s; limit = String.length s; cur = 0 }

let of_bytes b = of_string (Bytes.unsafe_to_string b)

let pos t = t.cur

let length t = t.limit

let remaining t = t.limit - t.cur

let at_end t = t.cur >= t.limit

(* A negative [n] (from e.g. a lying length field after arithmetic)
   must never move the cursor backwards: resynchronising decoders rely
   on forward progress for termination. *)
let check t n = if n < 0 || t.cur + n > t.limit then raise Truncated

let peek_u8 t =
  check t 1;
  Char.code (String.unsafe_get t.buf t.cur)

let u8 t =
  check t 1;
  let v = Char.code (String.unsafe_get t.buf t.cur) in
  t.cur <- t.cur + 1;
  v

let u16 t =
  let a = u8 t in
  let b = u8 t in
  (a lsl 8) lor b

let u32 t =
  let a = u16 t in
  let b = u16 t in
  (a lsl 16) lor b

let u16le t =
  let a = u8 t in
  let b = u8 t in
  (b lsl 8) lor a

let u32le t =
  let a = u16le t in
  let b = u16le t in
  (b lsl 16) lor a

let take t n =
  check t n;
  let s = String.sub t.buf t.cur n in
  t.cur <- t.cur + n;
  s

let skip t n =
  check t n;
  t.cur <- t.cur + n

let sub t n =
  check t n;
  let child = { buf = t.buf; limit = t.cur + n; cur = t.cur } in
  t.cur <- t.cur + n;
  child

let sub_reader t n =
  let n = if n < 0 then 0 else min n (remaining t) in
  sub t n
