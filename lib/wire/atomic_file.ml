let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* The tmp file lives in the target's directory: [Sys.rename] is only
   atomic within one filesystem. Concurrent writers of the same path
   last-write-win, which rename keeps safe (each rename publishes one
   complete version). *)
let tmp_name path = path ^ ".tmp"

let write_subst path f =
  let tmp = tmp_name path in
  let oc = open_out_bin tmp in
  (try
     f oc;
     (* fsync point: full durability would fsync [oc] and the parent
        directory here; flush-then-close covers process-kill crashes *)
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write path contents =
  write_subst path (fun oc -> output_string oc contents)
