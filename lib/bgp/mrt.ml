open Cfca_prefix
open Cfca_wire
open Cfca_resilience

type peer = { bgp_id : Ipv4.t; address : Ipv4.t; asn : int }

type rib_entry = { peer_index : int; originated : int; next_hop : Nexthop.t }

type update_message = {
  withdrawn : Prefix.t list;
  announced : Prefix.t list;
  next_hop : Nexthop.t option;
}

type record =
  | Peer_index_table of {
      collector_id : Ipv4.t;
      view_name : string;
      peers : peer array;
    }
  | Rib_ipv4_unicast of {
      sequence : int;
      prefix : Prefix.t;
      entries : rib_entry list;
    }
  | Bgp4mp_message of { peer_as : int; local_as : int; update : update_message }
  | Unknown of { mrt_type : int; subtype : int; payload : string }

(* MRT type / subtype codes (RFC 6396 §4). *)
let t_table_dump_v2 = 13

let st_peer_index_table = 1

let st_rib_ipv4_unicast = 2

let t_bgp4mp = 16

let st_bgp4mp_message_as4 = 4

(* BGP path attribute codes (RFC 4271 §5.1). *)
let attr_origin = 1

let attr_as_path = 2

let attr_next_hop = 3

let nexthop_address nh =
  let k = Nexthop.to_int nh in
  Ipv4.of_octets 10 0 ((k lsr 8) land 0xFF) (k land 0xFF)

let address_nexthop a =
  let o1, o2, o3, o4 = Ipv4.to_octets a in
  if o1 = 10 && o2 = 0 then
    let k = (o3 lsl 8) lor o4 in
    if k >= 1 then Some (Nexthop.of_int k) else None
  else None

(* -- NLRI encoding: length byte + just enough prefix bytes ---------- *)

let write_nlri w p =
  let len = Prefix.length p in
  Writer.u8 w len;
  let bits = Ipv4.to_int (Prefix.network p) in
  let nbytes = (len + 7) / 8 in
  for i = 0 to nbytes - 1 do
    Writer.u8 w ((bits lsr (24 - (8 * i))) land 0xFF)
  done

let corrupt r reason =
  raise (Errors.Fault (Errors.Corrupt_record { offset = Reader.pos r; reason }))

let unsupported r what =
  raise (Errors.Fault (Errors.Unsupported { offset = Reader.pos r; what }))

let read_nlri r =
  let len = Reader.u8 r in
  if len > 32 then corrupt r "NLRI prefix length > 32";
  let nbytes = (len + 7) / 8 in
  let bits = ref 0 in
  for i = 0 to nbytes - 1 do
    bits := !bits lor (Reader.u8 r lsl (24 - (8 * i)))
  done;
  Prefix.make (Ipv4.of_int !bits) len

(* -- BGP path attributes -------------------------------------------- *)

let write_attributes w ~next_hop ~origin_as =
  let body = Writer.create () in
  (* ORIGIN = IGP *)
  Writer.u8 body 0x40;
  Writer.u8 body attr_origin;
  Writer.u8 body 1;
  Writer.u8 body 0;
  (* AS_PATH: one AS_SEQUENCE segment with a single 4-byte AS *)
  Writer.u8 body 0x40;
  Writer.u8 body attr_as_path;
  Writer.u8 body 6;
  Writer.u8 body 2 (* AS_SEQUENCE *);
  Writer.u8 body 1;
  Writer.u32 body origin_as;
  (* NEXT_HOP *)
  Writer.u8 body 0x40;
  Writer.u8 body attr_next_hop;
  Writer.u8 body 4;
  Writer.u32 body (Ipv4.to_int (nexthop_address next_hop));
  Writer.u16 w (Writer.length body);
  Writer.string w (Writer.contents body)

(* Returns the next-hop found among the attributes, if any. *)
let read_attributes r =
  let total = Reader.u16 r in
  let attrs = Reader.sub r total in
  let next_hop = ref None in
  while not (Reader.at_end attrs) do
    let flags = Reader.u8 attrs in
    let typ = Reader.u8 attrs in
    let len =
      if flags land 0x10 <> 0 then Reader.u16 attrs else Reader.u8 attrs
    in
    let value = Reader.sub attrs len in
    if typ = attr_next_hop && len = 4 then begin
      let a = Ipv4.of_int (Reader.u32 value) in
      match address_nexthop a with
      | Some nh -> next_hop := Some nh
      | None -> ()
    end
  done;
  !next_hop

(* -- record payloads ------------------------------------------------ *)

let write_peer_index w ~collector_id ~view_name ~peers =
  Writer.u32 w (Ipv4.to_int collector_id);
  Writer.u16 w (String.length view_name);
  Writer.string w view_name;
  Writer.u16 w (Array.length peers);
  Array.iter
    (fun p ->
      (* peer type 0x02: IPv4 peer address, 4-byte AS *)
      Writer.u8 w 0x02;
      Writer.u32 w (Ipv4.to_int p.bgp_id);
      Writer.u32 w (Ipv4.to_int p.address);
      Writer.u32 w p.asn)
    peers

let read_peer_index r =
  let collector_id = Ipv4.of_int (Reader.u32 r) in
  let name_len = Reader.u16 r in
  let view_name = Reader.take r name_len in
  let count = Reader.u16 r in
  let peers =
    Array.init count (fun _ ->
        let typ = Reader.u8 r in
        let bgp_id = Ipv4.of_int (Reader.u32 r) in
        let address =
          if typ land 0x01 <> 0 then unsupported r "IPv6 peer address"
          else Ipv4.of_int (Reader.u32 r)
        in
        let asn = if typ land 0x02 <> 0 then Reader.u32 r else Reader.u16 r in
        { bgp_id; address; asn })
  in
  Peer_index_table { collector_id; view_name; peers }

let write_rib_entry_record w ~sequence ~prefix ~entries =
  Writer.u32 w sequence;
  write_nlri w prefix;
  Writer.u16 w (List.length entries);
  List.iter
    (fun e ->
      Writer.u16 w e.peer_index;
      Writer.u32 w e.originated;
      write_attributes w ~next_hop:e.next_hop ~origin_as:(64_512 + e.peer_index))
    entries

let read_rib_entry_record r =
  let sequence = Reader.u32 r in
  let prefix = read_nlri r in
  let count = Reader.u16 r in
  let entries =
    List.init count (fun _ ->
        let peer_index = Reader.u16 r in
        let originated = Reader.u32 r in
        let next_hop =
          match read_attributes r with
          | Some nh -> nh
          | None -> Nexthop.of_int (peer_index + 1)
        in
        { peer_index; originated; next_hop })
  in
  Rib_ipv4_unicast { sequence; prefix; entries }

let bgp_marker = String.make 16 '\xff'

let write_bgp4mp w ~peer_as ~local_as ~update =
  Writer.u32 w peer_as;
  Writer.u32 w local_as;
  Writer.u16 w 0 (* interface index *);
  Writer.u16 w 1 (* AFI = IPv4 *);
  Writer.u32 w (Ipv4.to_int (Ipv4.of_octets 192 0 2 1)) (* peer IP *);
  Writer.u32 w (Ipv4.to_int (Ipv4.of_octets 192 0 2 2)) (* local IP *);
  (* the embedded BGP UPDATE message *)
  let body = Writer.create () in
  let withdrawn = Writer.create () in
  List.iter (write_nlri withdrawn) update.withdrawn;
  Writer.u16 body (Writer.length withdrawn);
  Writer.string body (Writer.contents withdrawn);
  (match (update.announced, update.next_hop) with
  | [], _ -> Writer.u16 body 0
  | _ :: _, Some nh -> write_attributes body ~next_hop:nh ~origin_as:peer_as
  | _ :: _, None -> failwith "Mrt: announcement without a next-hop");
  List.iter (write_nlri body) update.announced;
  Writer.string w bgp_marker;
  Writer.u16 w (16 + 2 + 1 + Writer.length body);
  Writer.u8 w 2 (* UPDATE *);
  Writer.string w (Writer.contents body)

let read_bgp4mp r =
  let peer_as = Reader.u32 r in
  let local_as = Reader.u32 r in
  let _ifindex = Reader.u16 r in
  let afi = Reader.u16 r in
  if afi <> 1 then
    unsupported r (Printf.sprintf "AFI %d (only AFI 1, IPv4)" afi);
  let _peer_ip = Reader.u32 r in
  let _local_ip = Reader.u32 r in
  let marker = Reader.take r 16 in
  if marker <> bgp_marker then corrupt r "bad BGP marker";
  let msg_len = Reader.u16 r in
  let typ = Reader.u8 r in
  if msg_len < 19 then corrupt r "embedded BGP message length < 19";
  let body = Reader.sub_reader r (msg_len - 19) in
  if typ <> 2 then
    unsupported r (Printf.sprintf "embedded BGP message type %d (not UPDATE)" typ);
  let withdrawn_len = Reader.u16 body in
  let wr = Reader.sub body withdrawn_len in
  let withdrawn = ref [] in
  while not (Reader.at_end wr) do
    withdrawn := read_nlri wr :: !withdrawn
  done;
  let next_hop = read_attributes body in
  let announced = ref [] in
  while not (Reader.at_end body) do
    announced := read_nlri body :: !announced
  done;
  Bgp4mp_message
    {
      peer_as;
      local_as;
      update =
        {
          withdrawn = List.rev !withdrawn;
          announced = List.rev !announced;
          next_hop;
        };
    }

(* -- common header --------------------------------------------------- *)

let write_record w ~timestamp record =
  let typ, subtype, payload =
    let body = Writer.create () in
    match record with
    | Peer_index_table { collector_id; view_name; peers } ->
        write_peer_index body ~collector_id ~view_name ~peers;
        (t_table_dump_v2, st_peer_index_table, Writer.contents body)
    | Rib_ipv4_unicast { sequence; prefix; entries } ->
        write_rib_entry_record body ~sequence ~prefix ~entries;
        (t_table_dump_v2, st_rib_ipv4_unicast, Writer.contents body)
    | Bgp4mp_message { peer_as; local_as; update } ->
        write_bgp4mp body ~peer_as ~local_as ~update;
        (t_bgp4mp, st_bgp4mp_message_as4, Writer.contents body)
    | Unknown { mrt_type; subtype; payload } -> (mrt_type, subtype, payload)
  in
  Writer.u32 w timestamp;
  Writer.u16 w typ;
  Writer.u16 w subtype;
  Writer.u32 w (String.length payload);
  Writer.string w payload

let header_bytes = 12

(* The resync point: MRT records are length-delimited, so the parent
   reader is advanced past the whole declared body ([Reader.sub])
   before the body is parsed. A fault inside the body leaves the
   parent at the next record boundary and the stream continues. *)
let next_record r =
  if Reader.at_end r then `End
  else begin
    let start = Reader.pos r in
    let avail = Reader.remaining r in
    if avail < header_bytes then begin
      Reader.skip r avail;
      `Skip
        (Errors.Truncated { offset = start; wanted = header_bytes; available = avail })
    end
    else begin
      let timestamp = Reader.u32 r in
      let typ = Reader.u16 r in
      let subtype = Reader.u16 r in
      let len = Reader.u32 r in
      let avail = Reader.remaining r in
      if len > avail then begin
        Reader.skip r avail;
        `Skip (Errors.Truncated { offset = start; wanted = len; available = avail })
      end
      else
        let body = Reader.sub r len in
        match
          if typ = t_table_dump_v2 && subtype = st_peer_index_table then
            read_peer_index body
          else if typ = t_table_dump_v2 && subtype = st_rib_ipv4_unicast then
            read_rib_entry_record body
          else if typ = t_bgp4mp && subtype = st_bgp4mp_message_as4 then
            read_bgp4mp body
          else
            Unknown
              { mrt_type = typ; subtype; payload = Reader.take body (Reader.remaining body) }
        with
        | record -> `Record (timestamp, record)
        | exception Errors.Fault e -> `Skip e
        | exception Reader.Truncated ->
            `Skip
              (Errors.Corrupt_record
                 { offset = start; reason = "record body shorter than its contents" })
        | exception Failure reason ->
            `Skip (Errors.Corrupt_record { offset = start; reason })
    end
  end

let read_record r =
  match next_record r with
  | `End -> None
  | `Record (ts, record) -> Some (ts, record)
  | `Skip e -> raise (Errors.Fault e)

let fold_records ?(policy = Errors.Strict) r ~init ~f =
  let report = Errors.report () in
  let rec go acc =
    let start = Reader.pos r in
    match next_record r with
    | `End -> Ok (acc, report)
    | `Record (ts, record) -> (
        let bytes = Reader.pos r - start in
        match f acc ts record with
        | Ok acc ->
            Errors.note_parsed report ~bytes;
            go acc
        | Error e -> reject acc ~bytes e)
    | `Skip e -> reject acc ~bytes:(Reader.pos r - start) e
  and reject acc ~bytes e =
    Errors.note_drop report ~bytes e;
    match policy with Errors.Strict -> Error e | Errors.Lenient -> go acc
  in
  go init

(* -- file-level interchange ------------------------------------------ *)

let with_out path f =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let max_peer_count = 63

let standard_peers =
  Array.init max_peer_count (fun i ->
      {
        bgp_id = Ipv4.of_octets 198 51 100 (i + 1);
        address = nexthop_address (Nexthop.of_int (i + 1));
        asn = 64_512 + i;
      })

let encode_rib rib =
  let w = Writer.create ~capacity:(1 lsl 16) () in
  write_record w ~timestamp:0
    (Peer_index_table
       {
         collector_id = Ipv4.of_octets 198 51 100 0;
         view_name = "cfca-sim";
         peers = standard_peers;
       });
  let seq = ref 0 in
  Array.iter
    (fun (prefix, nh) ->
      write_record w ~timestamp:0
        (Rib_ipv4_unicast
           {
             sequence = !seq;
             prefix;
             entries =
               [
                 {
                   peer_index = Nexthop.to_int nh - 1;
                   originated = 0;
                   next_hop = nh;
                 };
               ];
           });
      incr seq)
    (Cfca_rib.Rib.entries rib);
  Writer.contents w

let write_rib_file path rib =
  with_out path (fun oc -> output_string oc (encode_rib rib))

let read_rib_string ?policy contents =
  match
    fold_records ?policy (Reader.of_string contents) ~init:[] ~f:(fun acc _ record ->
        match record with
        | Rib_ipv4_unicast { prefix; entries = { next_hop; _ } :: _; _ } ->
            Ok ((prefix, next_hop) :: acc)
        | Rib_ipv4_unicast { entries = []; _ }
        | Peer_index_table _ | Bgp4mp_message _ | Unknown _ ->
            Ok acc)
  with
  | Ok (acc, report) -> Ok (Cfca_rib.Rib.of_list acc, report)
  | Error _ as e -> e

let read_rib_file ?policy path =
  match read_all path with
  | contents -> read_rib_string ?policy contents
  | exception Sys_error msg -> Error (Errors.Io_error msg)

let encode_updates updates =
  let w = Writer.create ~capacity:(1 lsl 12) () in
  Array.iteri
    (fun i (u : Bgp_update.t) ->
      let update =
        match u.action with
        | Bgp_update.Announce nh ->
            { withdrawn = []; announced = [ u.prefix ]; next_hop = Some nh }
        | Bgp_update.Withdraw ->
            { withdrawn = [ u.prefix ]; announced = []; next_hop = None }
      in
      write_record w ~timestamp:i
        (Bgp4mp_message { peer_as = 64_512; local_as = 65_000; update }))
    updates;
  Writer.contents w

let write_update_file path updates =
  with_out path (fun oc -> output_string oc (encode_updates updates))

let read_update_string ?policy contents =
  let r = Reader.of_string contents in
  match
    fold_records ?policy r ~init:[] ~f:(fun acc _ record ->
        match record with
        | Bgp4mp_message { update = { announced = _ :: _; next_hop = None; _ }; _ } ->
            Error
              (Errors.Corrupt_record
                 {
                   offset = Reader.pos r;
                   reason = "announcement without a NEXT_HOP attribute";
                 })
        | Bgp4mp_message { update; _ } ->
            let acc =
              List.fold_left
                (fun acc p -> Bgp_update.withdraw p :: acc)
                acc update.withdrawn
            in
            let acc =
              match update.next_hop with
              | Some nh ->
                  List.fold_left
                    (fun acc p -> Bgp_update.announce p nh :: acc)
                    acc update.announced
              | None -> acc
            in
            Ok acc
        | Peer_index_table _ | Rib_ipv4_unicast _ | Unknown _ -> Ok acc)
  with
  | Ok (acc, report) -> Ok (Array.of_list (List.rev acc), report)
  | Error _ as e -> e

let read_update_file ?policy path =
  match read_all path with
  | contents -> read_update_string ?policy contents
  | exception Sys_error msg -> Error (Errors.Io_error msg)
