(** MRT (RFC 6396) binary codec — the format RouteViews publishes RIB
    snapshots (TABLE_DUMP_V2) and update streams (BGP4MP) in.

    Implemented subset, sufficient to interchange the paper's inputs:
    - TABLE_DUMP_V2 / PEER_INDEX_TABLE,
    - TABLE_DUMP_V2 / RIB_IPV4_UNICAST (ORIGIN + AS_PATH + NEXT_HOP
      attributes),
    - BGP4MP / BGP4MP_MESSAGE_AS4 carrying BGP UPDATE messages
      (withdrawn routes + NLRI with a NEXT_HOP attribute).

    Unrecognised record types round-trip as {!constructor:Unknown}.

    The simulator's small-integer next-hops map onto MRT as follows: a
    next-hop [k] is peer index [k-1] in the peer table and is also
    written into the NEXT_HOP attribute as the address [10.0.(k lsr 8).(k land 0xff)].
    The reader prefers the NEXT_HOP attribute and falls back to the
    peer index. *)

open Cfca_prefix
open Cfca_wire
open Cfca_resilience

type peer = { bgp_id : Ipv4.t; address : Ipv4.t; asn : int }

type rib_entry = { peer_index : int; originated : int; next_hop : Nexthop.t }

type update_message = {
  withdrawn : Prefix.t list;
  announced : Prefix.t list;
  next_hop : Nexthop.t option;  (** applies to all [announced] NLRI *)
}

type record =
  | Peer_index_table of {
      collector_id : Ipv4.t;
      view_name : string;
      peers : peer array;
    }
  | Rib_ipv4_unicast of {
      sequence : int;
      prefix : Prefix.t;
      entries : rib_entry list;
    }
  | Bgp4mp_message of { peer_as : int; local_as : int; update : update_message }
  | Unknown of { mrt_type : int; subtype : int; payload : string }

val write_record : Writer.t -> timestamp:int -> record -> unit

val next_record :
  Reader.t -> [ `End | `Record of int * record | `Skip of Errors.t ]
(** The resilient record framing layer: reads one length-delimited
    record, always leaving the reader at the next record boundary (or
    the end of input). A malformed header/body yields [`Skip] with the
    typed fault — never an exception — so lenient decoding is a loop
    over [next_record]. *)

val read_record : Reader.t -> (int * record) option
(** [None] at clean end of input.
    @raise Errors.Fault on a truncated or malformed record (the reader
    is still advanced to the next record boundary). *)

val fold_records :
  ?policy:Errors.policy ->
  Reader.t ->
  init:'acc ->
  f:('acc -> int -> record -> ('acc, Errors.t) result) ->
  ('acc * Errors.report, Errors.t) result
(** Drive {!next_record} to the end of input under [policy] (default
    [Strict]). [f acc timestamp record] may reject a structurally valid
    record with a typed error (a semantic drop). Under [Strict] the
    first fault is returned as [Error]; under [Lenient] faults are
    counted in the report and the stream resyncs. Never raises. *)

(** High-level file interchange with the simulator's types. *)

val encode_rib : Cfca_rib.Rib.t -> string
(** A PEER_INDEX_TABLE followed by one RIB_IPV4_UNICAST per entry. *)

val write_rib_file : string -> Cfca_rib.Rib.t -> unit

val read_rib_string :
  ?policy:Errors.policy -> string -> (Cfca_rib.Rib.t * Errors.report, Errors.t) result

val read_rib_file :
  ?policy:Errors.policy -> string -> (Cfca_rib.Rib.t * Errors.report, Errors.t) result

val encode_updates : Bgp_update.t array -> string
(** One BGP4MP_MESSAGE_AS4 per update. *)

val write_update_file : string -> Bgp_update.t array -> unit

val read_update_string :
  ?policy:Errors.policy -> string -> (Bgp_update.t array * Errors.report, Errors.t) result

val read_update_file :
  ?policy:Errors.policy -> string -> (Bgp_update.t array * Errors.report, Errors.t) result

val nexthop_address : Nexthop.t -> Ipv4.t
(** The 10.0.x.y encoding described above. *)

val address_nexthop : Ipv4.t -> Nexthop.t option
