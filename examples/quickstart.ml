(* Quickstart: build a FIB, watch CFCA extend + aggregate it, apply BGP
   updates, and look addresses up — on the paper's own running example
   (Table 1 / Fig. 4 / Fig. 6).

   Run with: dune exec examples/quickstart.exe *)

open Cfca_prefix
open Cfca_core

let () =
  (* The original FIB of Table 1(a); next-hop 9 is the default route. *)
  let routes =
    [
      (Prefix.v "129.10.124.0/24", 1);
      (Prefix.v "129.10.124.0/27", 1);
      (Prefix.v "129.10.124.64/26", 1);
      (Prefix.v "129.10.124.192/26", 2);
    ]
  in
  (* A sink lets us watch every FIB change the control plane pushes. *)
  let sink tree op =
    Format.printf "  data plane <- %a@." (Fib_op.pp tree) op
  in
  let rm = Route_manager.create ~default_nh:9 () in
  print_endline "== initial installation (extension + aggregation) ==";
  Route_manager.set_sink rm sink;
  Route_manager.load rm (List.to_seq routes);
  Format.printf "FIB: %d routes -> %d installed entries (tree: %d nodes)@."
    (Route_manager.route_count rm)
    (Route_manager.fib_size rm)
    (Route_manager.node_count rm);

  print_endline "\n== longest-prefix matches ==";
  List.iter
    (fun a ->
      let addr = Ipv4.of_string_exn a in
      Format.printf "  %-16s -> next-hop %a@." a Nexthop.pp
        (Route_manager.lookup rm addr))
    [ "129.10.124.1"; "129.10.124.65"; "129.10.124.192"; "8.8.8.8" ];

  (* Fig. 6: a next-hop change followed by a new announcement. *)
  print_endline "\n== BGP update: 129.10.124.64/26 -> next-hop 2 ==";
  Route_manager.announce rm (Prefix.v "129.10.124.64/26") 2;

  print_endline "\n== BGP announcement: 129.10.124.128/25 -> next-hop 2 ==";
  Route_manager.announce rm (Prefix.v "129.10.124.128/25") 2;

  print_endline "\n== BGP withdrawal: 129.10.124.64/26 ==";
  Route_manager.withdraw rm (Prefix.v "129.10.124.64/26");

  Format.printf "\nfinal FIB (%d entries):@." (Route_manager.fib_size rm);
  List.iter
    (fun (p, nh) ->
      Format.printf "  %-20s -> %a@." (Prefix.to_string p) Nexthop.pp nh)
    (Route_manager.entries rm);

  (* The well-formedness checker proves the FIB is a non-overlapping
     total cover: no cache hiding is possible. *)
  match Route_manager.verify rm with
  | Ok () -> print_endline "\ninvariants: OK (non-overlapping, total cover)"
  | Error msg -> Format.printf "\ninvariants VIOLATED: %s@." msg
