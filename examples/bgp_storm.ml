(* BGP update storm: how much data-plane churn does each scheme take?

   Replays a dense flap-heavy update storm (no packets) against all
   four systems and reports total FIB churn, the worst single-update
   burst (the paper's key TCAM-health metric) and handling time, then
   proves with VeriTable that everyone still forwards identically.

   Run with: dune exec examples/bgp_storm.exe *)

open Cfca_prefix
open Cfca_core
open Cfca_rib
open Cfca_traffic

let default_nh = Nexthop.of_int 33

let () =
  let rib =
    Rib_gen.generate { Rib_gen.size = 20_000; peers = 32; locality = 0.80; seed = 7 }
  in
  let flow = Flow_gen.create Flow_gen.default_params rib in
  (* a storm: heavy withdraw/re-announce flapping *)
  let updates =
    Update_gen.generate
      {
        Update_gen.default_params with
        count = 30_000;
        nh_change_frac = 0.2;
        new_announce_frac = 0.4;
        seed = 99;
      }
      flow
  in
  let a, w = Update_gen.count_kinds updates in
  Printf.printf "storm: %d updates (%d announce, %d withdraw) on %d routes\n\n"
    (Array.length updates) a w (Rib.size rib);
  Printf.printf "%-22s %10s %8s %10s %12s\n" "system" "churn" "burst"
    "time (ms)" "entries end";
  print_endline (String.make 68 '-');
  let report name churn burst seconds entries =
    Printf.printf "%-22s %10d %8d %10.1f %12d\n" name churn burst
      (1e3 *. seconds) entries
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in

  (* CFCA / PFCA (control plane only: every op counts as churn) *)
  let cached name create_load apply entries_fn =
    let churn = ref 0 and burst = ref 0 in
    let bump, system =
      let per_update = ref 0 in
      ( (fun () ->
          if !per_update > !burst then burst := !per_update;
          per_update := 0),
        create_load (fun _ (_ : Fib_op.t) ->
            incr churn;
            incr per_update) )
    in
    let (), seconds =
      time (fun () ->
          Array.iter
            (fun u ->
              apply system u;
              bump ())
            updates)
    in
    report name !churn !burst seconds (entries_fn system);
    system
  in
  let rm =
    cached "CFCA" (fun sink ->
        let rm = Route_manager.create ~default_nh () in
        Route_manager.load rm (Rib.to_seq rib);
        Route_manager.set_sink rm sink;
        rm)
      Route_manager.apply Route_manager.fib_size
  in
  let pf =
    cached "PFCA (extension)" (fun sink ->
        let t = Cfca_pfca.Pfca.create ~default_nh () in
        Cfca_pfca.Pfca.load t (Rib.to_seq rib);
        Cfca_pfca.Pfca.set_sink t sink;
        t)
      Cfca_pfca.Pfca.apply Cfca_pfca.Pfca.fib_size
  in
  let aggr policy =
    let open Cfca_aggr in
    let churn = ref 0 and burst = ref 0 in
    let t = Aggr.create ~policy ~default_nh () in
    Aggr.load t (Rib.to_seq rib);
    let per_update = ref 0 in
    Aggr.set_sink t (fun _ _ ->
        incr churn;
        incr per_update);
    let (), seconds =
      time (fun () ->
          Array.iter
            (fun u ->
              Aggr.apply t u;
              if !per_update > !burst then burst := !per_update;
              per_update := 0)
            updates)
    in
    report (Aggr.policy_name policy) !churn !burst seconds (Aggr.fib_size t);
    t
  in
  let faqs = aggr Cfca_aggr.Aggr.Faqs in
  let fifa = aggr Cfca_aggr.Aggr.Fifa in

  (* the paper's §4.1 sanity check: all four still forward identically *)
  let tables =
    [
      Route_manager.entries rm;
      Cfca_pfca.Pfca.entries pf;
      Cfca_aggr.Aggr.entries faqs;
      Cfca_aggr.Aggr.entries fifa;
    ]
  in
  match Cfca_veritable.Veritable.compare_tables tables with
  | Cfca_veritable.Veritable.Equivalent ->
      print_endline "\nVeriTable: all four systems forwarding-equivalent"
  | v ->
      Format.printf "\nVeriTable: %a@." Cfca_veritable.Veritable.pp_verdict v;
      exit 1
