(* Light Traffic Hitters Detection quality study.

   The LTHD pipeline (paper §3.3, Fig. 8) must surface *unpopular*
   cache entries as eviction victims without ever scanning the cache.
   This example feeds a skewed synthetic hit stream through an LTHD of
   the paper's dimensions (4 stages x 10 slots) and measures how good
   its victims are against the oracle (exact least-frequently-used):
   the victim's popularity percentile, averaged over many picks.

   Run with: dune exec examples/lthd_playground.exe *)

open Cfca_prefix
open Cfca_trie
open Cfca_dataplane

let build_entries n =
  (* one tree of disjoint /20 leaves standing in for cached FIB entries *)
  let tree = Bintrie.create ~default_nh:1 in
  let entries =
    Array.init n (fun i ->
        let p = Prefix.make (Ipv4.of_int (i lsl 12)) 20 in
        let node = Bintrie.add_route tree p 1 in
        Bintrie.Node.set_table tree node Bintrie.L1;
        node)
  in
  (tree, entries)

let () =
  let n = 1_000 in
  let tree, entries = build_entries n in
  let zipf = Cfca_traffic.Zipf.create ~exponent:1.2 ~n () in
  let st = Random.State.make [| 2024 |] in
  Printf.printf "%8s %8s | %22s %18s\n" "stages" "width" "victim percentile"
    "oracle agreement";
  print_endline (String.make 64 '-');
  List.iter
    (fun (stages, width) ->
      let lthd = Lthd.create ~stages ~width ~seed:5 in
      Array.iter (fun e -> Bintrie.Node.set_hits tree e 0) entries;
      (* replay 200K skewed hits *)
      for _ = 1 to 200_000 do
        let e = entries.(Cfca_traffic.Zipf.draw zipf st) in
        Bintrie.Node.set_hits tree e (Bintrie.Node.hits tree e + 1);
        Lthd.observe lthd tree e (Bintrie.Node.hits tree e)
      done;
      (* rank entries by true popularity: percentile 0 = least popular *)
      let sorted = Array.copy entries in
      Array.sort
        (fun a b ->
          compare (Bintrie.Node.hits tree a) (Bintrie.Node.hits tree b))
        sorted;
      let percentile = Hashtbl.create n in
      Array.iteri
        (fun i e ->
          Hashtbl.replace percentile
            (Bintrie.Node.prefix tree e)
            (100.0 *. float_of_int i /. float_of_int n))
        sorted;
      let picks = 2_000 in
      let total = ref 0.0 and bottom_decile = ref 0 and found = ref 0 in
      for _ = 1 to picks do
        let v = Lthd.pick_victim lthd tree ~table:Bintrie.L1 st in
        if not (Bintrie.is_nil v) then begin
          let pct = Hashtbl.find percentile (Bintrie.Node.prefix tree v) in
          total := !total +. pct;
          if pct <= 10.0 then incr bottom_decile;
          incr found
        end
      done;
      Printf.printf "%8d %8d | %15.1f %% avg %13.1f %% in bottom 10%%\n" stages
        width
        (!total /. float_of_int (max 1 !found))
        (100.0 *. float_of_int !bottom_decile /. float_of_int (max 1 !found)))
    [ (1, 10); (2, 10); (4, 10); (4, 32); (8, 32) ];
  print_endline
    "\nA uniformly random victim would average the 50th percentile; the\n\
     pipeline's victims sit far lower — unpopular entries, found at line\n\
     rate with O(stages) work per hit and no cache scans."
